//! Columnar occurrence storage — the structure-of-arrays replacement for
//! `Vec<Embedding>` on the mining hot paths.
//!
//! An [`OccurrenceStore`] holds every occurrence of one pattern as rows of a
//! single flat vertex arena plus a parallel transaction column.  All rows of
//! a store share one arity (the pattern's vertex count), so row `i` is the
//! arena slice `[i * arity, (i + 1) * arity)` — no per-occurrence heap
//! allocation, no pointer chasing, and extension joins append
//! `parent row + new vertex` straight into the child's arena
//! ([`OccurrenceStore::push_row_extended`]).
//!
//! The store provides the same support measures as
//! [`EmbeddingSet`] — raw count, distinct
//! vertex sets, minimum image (MNI) and transaction count — with identical
//! semantics (property-tested against `find_embeddings`), plus conversions in
//! both directions for the cold reporting path.

use crate::embedding::{Embedding, EmbeddingSet, SupportMeasure};
use crate::graph::VertexId;
use crate::occ_index::{KeyMarks, VertexMarks};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Reusable buffers for the sort-based support computations
/// ([`OccurrenceStore::support_with`]): one scratch per worker turns every
/// support evaluation into in-place sorts over flat arrays — no per-row
/// `Vec` keys, no hash sets, and (after warm-up) no allocation at all.
#[derive(Debug, Default, Clone)]
pub struct SupportScratch {
    /// Arena copy whose rows are sorted (and deduplicated) in place.
    sorted: Vec<VertexId>,
    /// Deduplicated length of each sorted row.
    lens: Vec<u32>,
    /// Row order buffer for the distinct-vertex-set count.
    rows: Vec<u32>,
    /// `(transaction, image)` buffer for the MNI column counts.
    keys: Vec<(u32, VertexId)>,
    /// Epoch-stamped `(transaction, image)` accumulator for the σ-pruned
    /// MNI column scans ([`OccurrenceStore::support_pruned`]).
    key_marks: KeyMarks,
}

impl SupportScratch {
    /// Creates an empty scratch (buffers grow on first use, then stay).
    pub fn new() -> Self {
        SupportScratch::default()
    }
}

/// All occurrences of one pattern, in columnar (SoA) layout.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccurrenceStore {
    /// Vertices per row (the pattern's vertex count).
    arity: usize,
    /// Flat vertex column: row `i` is `arena[i * arity..(i + 1) * arity]`.
    arena: Vec<VertexId>,
    /// Transaction of each row.
    transactions: Vec<u32>,
}

/// One borrowed row of an [`OccurrenceStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccRow<'a> {
    /// Transaction index of the occurrence.
    pub transaction: usize,
    /// Data-graph vertex per pattern vertex, indexed by pattern vertex id.
    pub vertices: &'a [VertexId],
}

impl OccRow<'_> {
    /// The data vertex that pattern vertex `p` maps to.
    #[inline]
    pub fn image(&self, p: usize) -> VertexId {
        self.vertices[p]
    }

    /// True if the occurrence uses data vertex `v`.
    #[inline]
    pub fn uses(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// Materializes the row as an owned [`Embedding`] (cold paths only).
    pub fn to_embedding(&self) -> Embedding {
        Embedding::in_transaction(self.vertices.to_vec(), self.transaction)
    }
}

impl OccurrenceStore {
    /// Creates an empty store for rows of `arity` vertices.
    pub fn new(arity: usize) -> Self {
        OccurrenceStore { arity, arena: Vec::new(), transactions: Vec::new() }
    }

    /// Creates an empty store with room for `rows` occurrences.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        OccurrenceStore {
            arity,
            arena: Vec::with_capacity(arity * rows),
            transactions: Vec::with_capacity(rows),
        }
    }

    /// Empties the store and switches it to rows of `arity` vertices,
    /// keeping the allocated buffers — the reset step when one store is
    /// reused as a per-worker scratch across many gathers.
    pub fn reset(&mut self, arity: usize) {
        self.arity = arity;
        self.arena.clear();
        self.transactions.clear();
    }

    /// Ensures room for `rows` additional occurrences, so a caller that
    /// knows its output size up front (e.g. a gather over an index's
    /// posting list) fills the store without incremental growth.
    pub fn reserve_rows(&mut self, rows: usize) {
        self.arena.reserve(self.arity * rows);
        self.transactions.reserve(rows);
    }

    /// Vertices per row.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of occurrences stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when no occurrence is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Appends one occurrence.
    ///
    /// # Panics
    /// Panics when `vertices.len()` differs from the store arity.
    pub fn push_row(&mut self, transaction: usize, vertices: &[VertexId]) {
        assert_eq!(vertices.len(), self.arity, "occurrence arity mismatch");
        self.arena.extend_from_slice(vertices);
        self.transactions.push(transaction as u32);
    }

    /// Appends `base` (a parent-pattern row of `arity - 1` vertices) extended
    /// with `extra` — the arena-based extension join step: the child row is
    /// written directly into the flat column with no intermediate `Vec`.
    pub fn push_row_extended(&mut self, transaction: usize, base: &[VertexId], extra: VertexId) {
        debug_assert_eq!(base.len() + 1, self.arity, "extended occurrence arity mismatch");
        self.arena.extend_from_slice(base);
        self.arena.push(extra);
        self.transactions.push(transaction as u32);
    }

    /// Appends one occurrence with its vertex sequence reversed — the
    /// re-orientation step of the canonical-form joins, written directly into
    /// the arena with no intermediate `Vec`.
    ///
    /// # Panics
    /// Panics when `vertices.len()` differs from the store arity.
    pub fn push_row_reversed(&mut self, transaction: usize, vertices: &[VertexId]) {
        assert_eq!(vertices.len(), self.arity, "occurrence arity mismatch");
        self.arena.extend(vertices.iter().rev().copied());
        self.transactions.push(transaction as u32);
    }

    /// The vertex slice of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[VertexId] {
        &self.arena[i * self.arity..(i + 1) * self.arity]
    }

    /// The transaction of row `i`.
    #[inline]
    pub fn transaction(&self, i: usize) -> usize {
        self.transactions[i] as usize
    }

    /// Borrowed view of row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> OccRow<'_> {
        OccRow { transaction: self.transaction(i), vertices: self.row(i) }
    }

    /// Iterates over the rows in insertion order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = OccRow<'_>> {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Appends all rows of `other`, preserving their order (the parallel
    /// joins' ordered partial-result merge).
    ///
    /// # Panics
    /// Panics on arity mismatch unless either store is empty.
    pub fn append(&mut self, other: OccurrenceStore) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(self.arity, other.arity, "appending stores of different arity");
        self.arena.extend_from_slice(&other.arena);
        self.transactions.extend_from_slice(&other.transactions);
    }

    /// Merges `other`'s rows into this store so the result is ordered by
    /// nondecreasing transaction (stable: on ties, this store's rows come
    /// first).  Both inputs must already be transaction-ordered — the
    /// invariant of every Stage-I seed store, whose rows are appended while
    /// walking transactions in ascending order.
    ///
    /// This is the incremental Stage-I *stitch*: after a dirty transaction's
    /// old rows are retained out and its fresh rows re-seeded, this merge
    /// restores exactly the row order a from-scratch sequential seed pass
    /// would have produced (each transaction's rows are contiguous, and a
    /// transaction is never partially dirty).
    ///
    /// # Panics
    /// Panics on arity mismatch unless either store is empty.
    pub fn merge_by_transaction(&mut self, other: OccurrenceStore) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other;
            return;
        }
        assert_eq!(self.arity, other.arity, "merging stores of different arity");
        debug_assert!(self.transactions.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(other.transactions.windows(2).all(|w| w[0] <= w[1]));
        // fast path: strictly appending rows of later transactions
        if self.transactions.last() <= other.transactions.first() {
            self.arena.extend_from_slice(&other.arena);
            self.transactions.extend_from_slice(&other.transactions);
            return;
        }
        let mut out = OccurrenceStore::with_capacity(self.arity, self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.len() && j < other.len() {
            if self.transactions[i] <= other.transactions[j] {
                out.push_row(self.transaction(i), self.row(i));
                i += 1;
            } else {
                out.push_row(other.transaction(j), other.row(j));
                j += 1;
            }
        }
        for r in i..self.len() {
            out.push_row(self.transaction(r), self.row(r));
        }
        for r in j..other.len() {
            out.push_row(other.transaction(r), other.row(r));
        }
        *self = out;
    }

    /// Collects the distinct transactions with at least one row into `out`
    /// (cleared first), ascending — the occurrence-side key of the
    /// per-transaction row index the incremental Stage-II reuse check walks.
    pub fn distinct_transactions_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend_from_slice(&self.transactions);
        out.sort_unstable();
        out.dedup();
    }

    /// Heap bytes held by this store's columns (allocated capacities),
    /// mirroring [`crate::csr::CsrSnapshot::heap_bytes`] — the
    /// maintained-state memory counter of the incremental bench section.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.arena.capacity() * size_of::<VertexId>() + self.transactions.capacity() * size_of::<u32>()
    }

    /// Keeps only the first `rows` occurrences.
    pub fn truncate(&mut self, rows: usize) {
        if rows < self.len() {
            self.arena.truncate(rows * self.arity);
            self.transactions.truncate(rows);
        }
    }

    /// Keeps the rows whose index satisfies `keep`, compacting the arena in
    /// place and preserving order.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(OccRow<'_>) -> bool) {
        let arity = self.arity;
        let mut write = 0usize;
        for read in 0..self.len() {
            if keep(self.get(read)) {
                if write != read {
                    self.arena.copy_within(read * arity..(read + 1) * arity, write * arity);
                    self.transactions[write] = self.transactions[read];
                }
                write += 1;
            }
        }
        self.truncate(write);
    }

    /// Removes every row whose transaction appears in `drop` (ascending,
    /// deduplicated), assuming this store's rows are in nondecreasing
    /// transaction order — the maintained Stage-I tables' invariant.
    ///
    /// Unlike [`OccurrenceStore::retain_rows`] with a membership predicate,
    /// this never touches a row when no dropped transaction is present: a
    /// binary search per dropped transaction rejects the store up front, and
    /// when rows do go, whole contiguous transaction runs move with one
    /// `copy_within` each.  With a single-transaction delta, the incremental
    /// miner's retain pass over the maintained table costs a lookup per
    /// slot instead of a predicate call per row.
    pub fn remove_transactions_sorted(&mut self, drop: &[u32]) {
        debug_assert!(self.transactions.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(drop.windows(2).all(|w| w[0] < w[1]));
        if drop.iter().all(|t| self.transactions.binary_search(t).is_err()) {
            return;
        }
        let arity = self.arity;
        let (mut write, mut read) = (0usize, 0usize);
        let n = self.transactions.len();
        while read < n {
            let t = self.transactions[read];
            let run = read + self.transactions[read..].partition_point(|&x| x == t);
            if drop.binary_search(&t).is_err() {
                if write != read {
                    self.arena.copy_within(read * arity..run * arity, write * arity);
                    self.transactions.copy_within(read..run, write);
                }
                write += run - read;
            }
            read = run;
        }
        self.truncate(write);
    }

    /// Removes rows that are exactly equal (same transaction and vertex
    /// sequence) to an earlier row.
    pub fn dedup_exact(&mut self) {
        self.dedup_exact_with(&mut SupportScratch::new())
    }

    /// [`OccurrenceStore::dedup_exact`] with caller-provided scratch: an
    /// index sort brings duplicates together, so no per-row key `Vec` is
    /// ever allocated.  The first copy (in row order) of every duplicate
    /// group survives, exactly as the hash-set formulation kept it.
    pub fn dedup_exact_with(&mut self, scratch: &mut SupportScratch) {
        if self.is_empty() {
            return;
        }
        let arity = self.arity;
        let SupportScratch { rows, lens, .. } = scratch;
        rows.clear();
        rows.extend(0..self.len() as u32);
        lens.clear();
        lens.resize(self.len(), 1);
        {
            let arena = &self.arena;
            let txs = &self.transactions;
            let row_of = |i: u32| &arena[i as usize * arity..(i as usize + 1) * arity];
            rows.sort_unstable_by(|&a, &b| {
                txs[a as usize]
                    .cmp(&txs[b as usize])
                    .then_with(|| row_of(a).cmp(row_of(b)))
                    .then_with(|| a.cmp(&b))
            });
            for w in rows.windows(2) {
                if txs[w[0] as usize] == txs[w[1] as usize] && row_of(w[0]) == row_of(w[1]) {
                    // duplicate of an earlier (smaller row id) copy
                    lens[w[1] as usize] = 0;
                }
            }
        }
        let mut i = 0usize;
        self.retain_rows(|_| {
            let keep = lens[i] == 1;
            i += 1;
            keep
        });
    }

    /// Number of distinct `(transaction, vertex set)` images.
    pub fn distinct_vertex_sets(&self) -> usize {
        self.distinct_vertex_sets_with(&mut SupportScratch::new())
    }

    /// [`OccurrenceStore::distinct_vertex_sets`] with caller-provided scratch
    /// buffers: a sorted copy of the arena plus an index sort replace the
    /// per-row `Vec` keys the hash-set formulation would allocate.
    pub fn distinct_vertex_sets_with(&self, scratch: &mut SupportScratch) -> usize {
        if self.is_empty() {
            return 0;
        }
        let arity = self.arity;
        let SupportScratch { sorted, lens, rows, .. } = scratch;
        sorted.clear();
        sorted.extend_from_slice(&self.arena);
        lens.clear();
        for i in 0..self.len() {
            let row = &mut sorted[i * arity..(i + 1) * arity];
            row.sort_unstable();
            // in-place dedup: shift distinct values left, record the length
            let mut w = 1usize;
            for r in 1..arity {
                if row[r] != row[w - 1] {
                    row[w] = row[r];
                    w += 1;
                }
            }
            lens.push(w as u32);
        }
        let set_of = |i: u32| {
            let i = i as usize;
            &sorted[i * arity..i * arity + lens[i] as usize]
        };
        rows.clear();
        rows.extend(0..self.len() as u32);
        rows.sort_unstable_by(|&a, &b| {
            self.transactions[a as usize]
                .cmp(&self.transactions[b as usize])
                .then_with(|| set_of(a).cmp(set_of(b)))
        });
        1 + rows
            .windows(2)
            .filter(|w| {
                self.transactions[w[0] as usize] != self.transactions[w[1] as usize]
                    || set_of(w[0]) != set_of(w[1])
            })
            .count()
    }

    /// Minimum-image-based (MNI) support: the minimum, over pattern
    /// vertices, of the number of distinct data vertices the column maps to.
    pub fn mni_support(&self) -> usize {
        self.mni_support_with(&mut SupportScratch::new())
    }

    /// [`OccurrenceStore::mni_support`] with caller-provided scratch buffers:
    /// each column is counted by an in-place sort of a flat
    /// `(transaction, image)` buffer instead of a rebuilt hash set.
    pub fn mni_support_with(&self, scratch: &mut SupportScratch) -> usize {
        if self.is_empty() {
            return 0;
        }
        let mut min = usize::MAX;
        for p in 0..self.arity {
            scratch.keys.clear();
            scratch
                .keys
                .extend((0..self.len()).map(|i| (self.transactions[i], self.arena[i * self.arity + p])));
            scratch.keys.sort_unstable();
            let distinct = 1 + scratch.keys.windows(2).filter(|w| w[0] != w[1]).count();
            min = min.min(distinct);
        }
        min
    }

    /// Number of distinct transactions with at least one occurrence.
    pub fn transaction_support(&self) -> usize {
        self.transaction_support_with(&mut SupportScratch::new())
    }

    /// [`OccurrenceStore::transaction_support`] with caller-provided scratch.
    pub fn transaction_support_with(&self, scratch: &mut SupportScratch) -> usize {
        if self.is_empty() {
            return 0;
        }
        scratch.rows.clear();
        scratch.rows.extend_from_slice(&self.transactions);
        scratch.rows.sort_unstable();
        1 + scratch.rows.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// Support under the chosen measure — identical semantics to
    /// [`EmbeddingSet::support`].
    pub fn support(&self, measure: SupportMeasure) -> usize {
        self.support_with(measure, &mut SupportScratch::new())
    }

    /// [`OccurrenceStore::support`] with caller-provided scratch buffers —
    /// the form the mining hot loops use, so a support evaluation per
    /// candidate extension costs sorts over reused flat buffers instead of a
    /// freshly allocated hash set.
    pub fn support_with(&self, measure: SupportMeasure, scratch: &mut SupportScratch) -> usize {
        match measure {
            SupportMeasure::EmbeddingCount => self.len(),
            SupportMeasure::DistinctVertexSets => self.distinct_vertex_sets_with(scratch),
            SupportMeasure::MinimumImage => self.mni_support_with(scratch),
            SupportMeasure::Transactions => self.transaction_support_with(scratch),
        }
    }

    /// [`OccurrenceStore::support_with`] with a frequency-threshold early
    /// exit — the Stage-I join kernels' σ-pruned evaluator, the direct-store
    /// sibling of [`SupportBatch::support_extended_pruned`].
    ///
    /// The returned value equals the exact support whenever that support is
    /// at least `sigma`; below `sigma` the evaluation stops at the first
    /// certificate and only promises to return *some* value `< sigma`, so a
    /// caller's `support < sigma` test decides identically to the exact
    /// evaluation (property-tested across all four measures in
    /// `crates/graph/tests`):
    ///
    /// * every measure's support is bounded by the row count, so a store
    ///   with fewer than `sigma` rows is rejected without touching a single
    ///   vertex — the dominant reject shape of the join kernels, where the
    ///   row cap fires before the per-pattern dedup is even attempted;
    /// * a minimum-image evaluation replaces the per-column sorts with
    ///   epoch-marked counting whose running minimum starts at the row
    ///   count: each column scan breaks the moment its distinct count
    ///   reaches the minimum so far (it provably cannot lower it), and the
    ///   whole evaluation bails after the first column that drops below
    ///   `sigma`.
    pub fn support_pruned(
        &self,
        measure: SupportMeasure,
        sigma: usize,
        scratch: &mut SupportScratch,
    ) -> usize {
        if self.len() < sigma {
            return self.len();
        }
        match measure {
            SupportMeasure::EmbeddingCount => self.len(),
            SupportMeasure::DistinctVertexSets => self.distinct_vertex_sets_with(scratch),
            SupportMeasure::MinimumImage => self.mni_support_pruned(sigma, scratch),
            SupportMeasure::Transactions => self.transaction_support_with(scratch),
        }
    }

    /// σ-pruned minimum-image count: exact whenever the result reaches
    /// `sigma`, early-exit below it.  `min` starts at the row count because
    /// no column's distinct `(transaction, image)` count can exceed it.
    fn mni_support_pruned(&self, sigma: usize, scratch: &mut SupportScratch) -> usize {
        let mut min = self.len();
        for p in 0..self.arity {
            scratch.key_marks.reset();
            let mut distinct = 0usize;
            for i in 0..self.len() {
                let key = ((self.transactions[i] as u128) << 32) | self.arena[i * self.arity + p].0 as u128;
                if scratch.key_marks.insert(key) {
                    distinct += 1;
                    if distinct >= min {
                        // the column cannot lower the minimum any more
                        break;
                    }
                }
            }
            min = min.min(distinct);
            if min < sigma {
                return min;
            }
        }
        min
    }

    /// Materializes the store as an [`EmbeddingSet`] (cold reporting path).
    pub fn to_embedding_set(&self) -> EmbeddingSet {
        EmbeddingSet::from_vec(self.iter().map(|r| r.to_embedding()).collect())
    }

    /// Builds a store from an [`EmbeddingSet`] whose embeddings all have
    /// `arity` vertices.
    ///
    /// # Panics
    /// Panics when an embedding's arity differs.
    pub fn from_embedding_set(arity: usize, set: &EmbeddingSet) -> Self {
        let mut store = OccurrenceStore::with_capacity(arity, set.len());
        for e in set.iter() {
            store.push_row(e.transaction, &e.vertices);
        }
        store
    }
}

/// Batched support evaluation across **sibling candidates sharing one parent
/// store**: the sort-based work every candidate used to redo over its own
/// gathered rows (per-column `(transaction, image)` sorts for MNI, per-row
/// set sorts for distinct-vertex-sets) is hoisted into a one-time
/// *rank-assignment pass over the parent*, after which each candidate is
/// scored by linear passes over its supporting entries with epoch-stamped
/// per-candidate accumulators — no child store is ever materialized for a
/// support decision, so the reject path performs no gather at all.
///
/// [`SupportBatch::support_extended`] returns exactly the value of gathering
/// `entries` into a child store ([`parent row` + optional new vertex] per
/// entry) and calling [`OccurrenceStore::support_with`] on it, for all four
/// measures (property-tested in the mining crate).
///
/// Candidate entry lists are additionally **frontier-compressed**: entry row
/// ids arrive ascending, so they collapse into delta-1 runs `(start, len)`
/// and every row-indexed pass (parent columns, transactions, set ranks)
/// walks those runs sequentially through the 4-byte rank columns instead of
/// re-reading the 8-byte entry pairs per column — the reject path touches a
/// fraction of the memory the gather-and-measure path did.
///
/// The rank tables are built lazily for the measure actually requested and
/// reused until [`SupportBatch::invalidate`] marks the parent stale; all
/// buffers are reused across parents (steady-state allocation-free).
#[derive(Debug, Default, Clone)]
pub struct SupportBatch {
    /// Measure the rank tables currently serve (`None` = stale).
    prepared: Option<SupportMeasure>,
    /// Shape of the prepared parent, to size the rank columns.
    rows: usize,
    arity: usize,
    /// MNI: dense rank of `(transaction, image)` per row, one column of
    /// `rows` ranks per pattern vertex (flattened `arity × rows`).
    col_rank: Vec<u32>,
    /// DVS: per-row sorted-and-deduplicated vertex sets (flat arena) ...
    set_arena: Vec<VertexId>,
    /// ... their deduplicated lengths ...
    set_lens: Vec<u32>,
    /// ... and the dense rank of each row's `(transaction, set)`.
    set_rank: Vec<u32>,
    /// `(transaction, image, row)` sort buffer for rank assignment.
    rank_keys: Vec<(u32, VertexId, u32)>,
    /// Row/entry index sort buffer.
    order: Vec<u32>,
    /// Compressed row frontier of one candidate: delta-1 runs `(start, len)`
    /// over its (ascending, deduplicated) entry row ids.
    runs: Vec<(u32, u32)>,
    /// Dense per-candidate accumulator over rank ids.
    marks: VertexMarks,
    /// Composite per-candidate accumulator (e.g. `(transaction, vertex)`).
    key_marks: KeyMarks,
}

impl SupportBatch {
    /// Creates an empty batch evaluator (buffers grow on first use).
    pub fn new() -> Self {
        SupportBatch::default()
    }

    /// Marks the rank tables stale.  Must be called whenever the parent
    /// store the entries refer to changes (e.g. a new pattern's table was
    /// built); the next evaluation re-prepares against the new parent.
    #[inline]
    pub fn invalidate(&mut self) {
        self.prepared = None;
    }

    /// Support of the child pattern whose occurrences are `parent` row `row`
    /// (extended with vertex `w` when `adds_vertex`) for each `(row, w)` in
    /// `entries` — byte-identical to gathering that child store and calling
    /// [`OccurrenceStore::support_with`] on it.
    ///
    /// Entry row ids must be ascending (duplicates allowed), the order the
    /// extension index stores them in.
    pub fn support_extended(
        &mut self,
        parent: &OccurrenceStore,
        measure: SupportMeasure,
        entries: &[(u32, VertexId)],
        adds_vertex: bool,
    ) -> usize {
        if entries.is_empty() {
            return 0;
        }
        if measure == SupportMeasure::EmbeddingCount {
            // the child row count is the entry count; nothing to prepare
            return entries.len();
        }
        self.ensure_prepared(parent, measure);
        match measure {
            SupportMeasure::EmbeddingCount => unreachable!("handled above"),
            SupportMeasure::Transactions => {
                self.compress_frontier(entries);
                self.key_marks.reset();
                let mut distinct = 0usize;
                for &(start, len) in &self.runs {
                    for r in start..start + len {
                        if self.key_marks.insert(parent.transactions[r as usize] as u128) {
                            distinct += 1;
                        }
                    }
                }
                distinct
            }
            SupportMeasure::MinimumImage => {
                self.compress_frontier(entries);
                let mut min = usize::MAX;
                for p in 0..self.arity {
                    let col = &self.col_rank[p * self.rows..(p + 1) * self.rows];
                    self.marks.reset();
                    let mut distinct = 0usize;
                    for &(start, len) in &self.runs {
                        for r in start..start + len {
                            if self.marks.mark(VertexId(col[r as usize])) {
                                distinct += 1;
                            }
                        }
                    }
                    min = min.min(distinct);
                }
                if adds_vertex {
                    // the new-vertex column: distinct (transaction, w) pairs
                    self.key_marks.reset();
                    let mut distinct = 0usize;
                    for &(row, w) in entries {
                        let key = ((parent.transactions[row as usize] as u128) << 32) | w.0 as u128;
                        if self.key_marks.insert(key) {
                            distinct += 1;
                        }
                    }
                    min = min.min(distinct);
                }
                min
            }
            SupportMeasure::DistinctVertexSets => {
                if !adds_vertex {
                    // child sets equal parent sets: count distinct set ranks
                    self.compress_frontier(entries);
                    self.marks.reset();
                    let mut distinct = 0usize;
                    for &(start, len) in &self.runs {
                        for r in start..start + len {
                            if self.marks.mark(VertexId(self.set_rank[r as usize])) {
                                distinct += 1;
                            }
                        }
                    }
                    distinct
                } else {
                    // child set = parent set ∪ {w}: group entries under the
                    // augmented-set order without materializing any set
                    let SupportBatch { order, set_arena, set_lens, arity, .. } = self;
                    let arity = *arity;
                    let set_of = |row: u32| {
                        let i = row as usize;
                        &set_arena[i * arity..i * arity + set_lens[i] as usize]
                    };
                    order.clear();
                    order.extend(0..entries.len() as u32);
                    order.sort_unstable_by(|&a, &b| {
                        let (ra, wa) = entries[a as usize];
                        let (rb, wb) = entries[b as usize];
                        parent.transactions[ra as usize]
                            .cmp(&parent.transactions[rb as usize])
                            .then_with(|| cmp_augmented(set_of(ra), wa, set_of(rb), wb))
                    });
                    1 + order
                        .windows(2)
                        .filter(|pair| {
                            let (ra, wa) = entries[pair[0] as usize];
                            let (rb, wb) = entries[pair[1] as usize];
                            parent.transactions[ra as usize] != parent.transactions[rb as usize]
                                || cmp_augmented(set_of(ra), wa, set_of(rb), wb) != Ordering::Equal
                        })
                        .count()
                }
            }
        }
    }

    /// [`SupportBatch::support_extended`] with a frequency-threshold early
    /// exit: the returned value equals the exact support whenever that
    /// support is at least `sigma`; when it is below `sigma` the evaluation
    /// stops at the first certificate and only promises to return *some*
    /// value `< sigma`.  A caller's `support < sigma` test therefore decides
    /// identically to the exact evaluation — which is all the grow engine's
    /// frequency gate needs — at a fraction of the reject cost:
    ///
    /// * a candidate whose entries touch fewer than `sigma` distinct parent
    ///   rows (the dominant reject shape: one row extended by many
    ///   attachment vertices) is rejected after the frontier pass alone,
    ///   since every parent-side column's distinct count is bounded by the
    ///   distinct row count;
    /// * a minimum-image reject stops at the first column whose distinct
    ///   count falls below `sigma` instead of walking all `arity + 1`
    ///   columns.
    ///
    /// The augmented distinct-vertex-sets case has no distinct-row bound
    /// (one row extended by `k` vertices yields up to `k` distinct sets), so
    /// it falls through to the exact evaluation.
    pub fn support_extended_pruned(
        &mut self,
        parent: &OccurrenceStore,
        measure: SupportMeasure,
        entries: &[(u32, VertexId)],
        adds_vertex: bool,
        sigma: usize,
    ) -> usize {
        if entries.is_empty() || measure == SupportMeasure::EmbeddingCount {
            return self.support_extended(parent, measure, entries, adds_vertex);
        }
        let mut cap = usize::MAX;
        if !(measure == SupportMeasure::DistinctVertexSets && adds_vertex) {
            self.compress_frontier(entries);
            let distinct_rows: usize = self.runs.iter().map(|&(_, len)| len as usize).sum();
            if distinct_rows < sigma {
                return distinct_rows;
            }
            cap = distinct_rows;
        }
        if measure != SupportMeasure::MinimumImage {
            return self.support_extended(parent, measure, entries, adds_vertex);
        }
        self.ensure_prepared(parent, measure);
        // the frontier is already compressed above; `min` starts at the
        // distinct-row count because no column can exceed it, which lets
        // every column scan stop the moment its running count reaches the
        // minimum so far — the column then provably cannot lower the
        // minimum, so the final value stays exact
        let mut min = cap;
        for p in 0..self.arity {
            let col = &self.col_rank[p * self.rows..(p + 1) * self.rows];
            self.marks.reset();
            let mut distinct = 0usize;
            'col: for &(start, len) in &self.runs {
                for r in start..start + len {
                    if self.marks.mark(VertexId(col[r as usize])) {
                        distinct += 1;
                        if distinct >= min {
                            break 'col;
                        }
                    }
                }
            }
            min = min.min(distinct);
            if min < sigma {
                return min;
            }
        }
        if adds_vertex {
            self.key_marks.reset();
            let mut distinct = 0usize;
            for &(row, w) in entries {
                let key = ((parent.transactions[row as usize] as u128) << 32) | w.0 as u128;
                if self.key_marks.insert(key) {
                    distinct += 1;
                    if distinct >= min {
                        break;
                    }
                }
            }
            min = min.min(distinct);
        }
        min
    }

    /// Builds the rank tables the measure needs, unless they are already
    /// prepared for this parent shape and measure.
    fn ensure_prepared(&mut self, parent: &OccurrenceStore, measure: SupportMeasure) {
        if self.prepared == Some(measure) && self.rows == parent.len() && self.arity == parent.arity {
            return;
        }
        self.rows = parent.len();
        self.arity = parent.arity;
        match measure {
            SupportMeasure::EmbeddingCount | SupportMeasure::Transactions => {}
            SupportMeasure::MinimumImage => self.prepare_column_ranks(parent),
            SupportMeasure::DistinctVertexSets => self.prepare_set_ranks(parent),
        }
        self.prepared = Some(measure);
    }

    /// One pass over the parent per column: dense ranks of `(transaction,
    /// image)`, shared by every sibling candidate's MNI evaluation.
    fn prepare_column_ranks(&mut self, parent: &OccurrenceStore) {
        let (rows, arity) = (self.rows, self.arity);
        self.col_rank.clear();
        self.col_rank.resize(arity * rows, 0);
        for p in 0..arity {
            self.rank_keys.clear();
            self.rank_keys
                .extend((0..rows).map(|i| (parent.transactions[i], parent.arena[i * arity + p], i as u32)));
            self.rank_keys.sort_unstable();
            let col = &mut self.col_rank[p * rows..(p + 1) * rows];
            let mut rank = 0u32;
            for j in 0..rows {
                if j > 0
                    && (self.rank_keys[j].0, self.rank_keys[j].1)
                        != (self.rank_keys[j - 1].0, self.rank_keys[j - 1].1)
                {
                    rank += 1;
                }
                col[self.rank_keys[j].2 as usize] = rank;
            }
        }
    }

    /// One pass over the parent: every row's sorted deduplicated vertex set
    /// plus the dense rank of its `(transaction, set)`, shared by every
    /// sibling candidate's distinct-vertex-sets evaluation.
    fn prepare_set_ranks(&mut self, parent: &OccurrenceStore) {
        let (rows, arity) = (self.rows, self.arity);
        self.set_arena.clear();
        self.set_arena.extend_from_slice(&parent.arena);
        self.set_lens.clear();
        for i in 0..rows {
            let row = &mut self.set_arena[i * arity..(i + 1) * arity];
            row.sort_unstable();
            let mut w = 1usize;
            for r in 1..arity {
                if row[r] != row[w - 1] {
                    row[w] = row[r];
                    w += 1;
                }
            }
            self.set_lens.push(w as u32);
        }
        let set_arena = &self.set_arena;
        let set_lens = &self.set_lens;
        let set_of = |i: u32| {
            let i = i as usize;
            &set_arena[i * arity..i * arity + set_lens[i] as usize]
        };
        self.order.clear();
        self.order.extend(0..rows as u32);
        self.order.sort_unstable_by(|&a, &b| {
            parent.transactions[a as usize]
                .cmp(&parent.transactions[b as usize])
                .then_with(|| set_of(a).cmp(set_of(b)))
        });
        self.set_rank.clear();
        self.set_rank.resize(rows, 0);
        let mut rank = 0u32;
        for j in 0..rows {
            if j > 0 {
                let (a, b) = (self.order[j - 1], self.order[j]);
                if parent.transactions[a as usize] != parent.transactions[b as usize]
                    || set_of(a) != set_of(b)
                {
                    rank += 1;
                }
            }
            self.set_rank[self.order[j] as usize] = rank;
        }
    }

    /// Compresses a candidate's (ascending) entry row ids into delta-1 runs.
    fn compress_frontier(&mut self, entries: &[(u32, VertexId)]) {
        self.runs.clear();
        let mut start = entries[0].0;
        let mut last = start;
        let mut len = 1u32;
        for &(row, _) in &entries[1..] {
            debug_assert!(row >= last, "entry rows must be ascending");
            if row == last {
                continue;
            }
            if row == last + 1 {
                len += 1;
            } else {
                self.runs.push((start, len));
                start = row;
                len = 1;
            }
            last = row;
        }
        self.runs.push((start, len));
    }
}

/// Compares two child vertex sets `a ∪ {wa}` and `b ∪ {wb}` (each a sorted
/// deduplicated parent set plus one new vertex, deduplicated) in
/// lexicographic order without materializing either union — the comparator
/// behind the batched distinct-vertex-sets grouping.
fn cmp_augmented(a: &[VertexId], wa: VertexId, b: &[VertexId], wb: VertexId) -> Ordering {
    let (mut ia, mut ib) = (0usize, 0usize);
    let (mut used_a, mut used_b) = (false, false);
    loop {
        let x = next_augmented(a, &mut ia, wa, &mut used_a);
        let y = next_augmented(b, &mut ib, wb, &mut used_b);
        match (x, y) {
            (Some(x), Some(y)) => match x.cmp(&y) {
                Ordering::Equal => continue,
                other => return other,
            },
            (None, None) => return Ordering::Equal,
            (None, Some(_)) => return Ordering::Less,
            (Some(_), None) => return Ordering::Greater,
        }
    }
}

/// Yields the next element of sorted `set` with `w` merged in (emitted once
/// even when `w` is already a member).
#[inline]
fn next_augmented(set: &[VertexId], i: &mut usize, w: VertexId, used_w: &mut bool) -> Option<VertexId> {
    match (set.get(*i).copied(), *used_w) {
        (Some(v), false) => {
            if v < w {
                *i += 1;
                Some(v)
            } else if v == w {
                *i += 1;
                *used_w = true;
                Some(v)
            } else {
                *used_w = true;
                Some(w)
            }
        }
        (Some(v), true) => {
            *i += 1;
            Some(v)
        }
        (None, false) => {
            *used_w = true;
            Some(w)
        }
        (None, true) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    fn store() -> OccurrenceStore {
        let mut s = OccurrenceStore::new(2);
        s.push_row(0, &v(&[0, 1]));
        s.push_row(0, &v(&[1, 0]));
        s.push_row(1, &v(&[2, 3]));
        s
    }

    #[test]
    fn rows_and_accessors() {
        let s = store();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.row(1), &v(&[1, 0])[..]);
        assert_eq!(s.transaction(2), 1);
        let r = s.get(0);
        assert_eq!(r.image(1), VertexId(1));
        assert!(r.uses(VertexId(0)));
        assert!(!r.uses(VertexId(5)));
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn support_measures_match_embedding_set() {
        let s = store();
        let es = s.to_embedding_set();
        for m in [
            SupportMeasure::EmbeddingCount,
            SupportMeasure::DistinctVertexSets,
            SupportMeasure::MinimumImage,
            SupportMeasure::Transactions,
        ] {
            assert_eq!(s.support(m), es.support(m), "measure {m:?}");
        }
        assert_eq!(s.support(SupportMeasure::EmbeddingCount), 3);
        assert_eq!(s.support(SupportMeasure::DistinctVertexSets), 2);
        assert_eq!(s.support(SupportMeasure::Transactions), 2);
    }

    #[test]
    fn empty_store_supports_are_zero() {
        let s = OccurrenceStore::new(3);
        assert_eq!(s.support(SupportMeasure::MinimumImage), 0);
        assert_eq!(s.support(SupportMeasure::DistinctVertexSets), 0);
        assert_eq!(s.support(SupportMeasure::Transactions), 0);
    }

    #[test]
    fn extension_join_appends_flat() {
        let parent = store();
        let mut child = OccurrenceStore::new(3);
        for r in parent.iter() {
            child.push_row_extended(r.transaction, r.vertices, VertexId(9));
        }
        assert_eq!(child.len(), 3);
        assert_eq!(child.row(0), &v(&[0, 1, 9])[..]);
        assert_eq!(child.transaction(2), 1);
    }

    #[test]
    fn merge_by_transaction_restores_sequential_order() {
        // clean rows of transactions {0, 2}, dirty re-seed of transaction 1:
        // the merge interleaves exactly as a sequential 0,1,2 walk would
        let mut clean = OccurrenceStore::new(2);
        clean.push_row(0, &v(&[0, 1]));
        clean.push_row(0, &v(&[1, 2]));
        clean.push_row(2, &v(&[4, 5]));
        let mut dirty = OccurrenceStore::new(2);
        dirty.push_row(1, &v(&[7, 8]));
        dirty.push_row(1, &v(&[8, 9]));
        clean.merge_by_transaction(dirty);
        let txs: Vec<usize> = clean.iter().map(|r| r.transaction).collect();
        assert_eq!(txs, vec![0, 0, 1, 1, 2]);
        assert_eq!(clean.row(2), &v(&[7, 8])[..]);
        assert_eq!(clean.row(4), &v(&[4, 5])[..]);

        // appending later transactions takes the fast path, same result
        let mut base = OccurrenceStore::new(2);
        base.push_row(0, &v(&[0, 1]));
        let mut tail = OccurrenceStore::new(2);
        tail.push_row(3, &v(&[2, 3]));
        base.merge_by_transaction(tail);
        assert_eq!(base.len(), 2);
        assert_eq!(base.transaction(1), 3);

        // either side empty is a no-op / adoption
        let mut empty = OccurrenceStore::new(2);
        empty.merge_by_transaction(base.clone());
        assert_eq!(empty, base);
        base.merge_by_transaction(OccurrenceStore::new(2));
        assert_eq!(base.len(), 2);
    }

    #[test]
    fn distinct_transactions_and_heap_bytes() {
        let s = store();
        let mut txs = Vec::new();
        s.distinct_transactions_into(&mut txs);
        assert_eq!(txs, vec![0, 1]);
        assert!(s.heap_bytes() >= 3 * 2 * std::mem::size_of::<VertexId>() + 3 * 4);
        assert!(OccurrenceStore::new(2).heap_bytes() == 0);
    }

    #[test]
    fn dedup_and_retain() {
        let mut s = OccurrenceStore::new(2);
        s.push_row(0, &v(&[0, 1]));
        s.push_row(0, &v(&[0, 1]));
        s.push_row(0, &v(&[1, 0]));
        s.dedup_exact();
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(1), &v(&[1, 0])[..]);
        s.retain_rows(|r| r.vertices[0] == VertexId(0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.row(0), &v(&[0, 1])[..]);
    }

    #[test]
    fn remove_transactions_sorted_matches_retain() {
        let build = || {
            let mut s = OccurrenceStore::new(2);
            for (t, a, b) in [(0, 0, 1), (0, 1, 2), (1, 3, 4), (2, 5, 6), (2, 6, 7), (4, 8, 9)] {
                s.push_row(t, &v(&[a, b]));
            }
            s
        };
        for drop in [vec![], vec![1u32], vec![0, 2], vec![4], vec![3], vec![0, 1, 2, 4]] {
            let mut fast = build();
            fast.remove_transactions_sorted(&drop);
            let mut slow = build();
            slow.retain_rows(|r| drop.binary_search(&(r.transaction as u32)).is_err());
            assert_eq!(fast, slow, "drop set {drop:?}");
        }
    }

    #[test]
    fn append_and_truncate() {
        let mut a = store();
        let b = store();
        a.append(b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.row(3), &v(&[0, 1])[..]);
        a.truncate(2);
        assert_eq!(a.len(), 2);
        let mut empty = OccurrenceStore::new(7);
        empty.append(a.clone());
        assert_eq!(empty.arity(), 2);
        assert_eq!(empty.len(), 2);
        a.append(OccurrenceStore::new(9));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn embedding_set_roundtrip() {
        let s = store();
        let back = OccurrenceStore::from_embedding_set(2, &s.to_embedding_set());
        assert_eq!(s, back);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut s = OccurrenceStore::new(2);
        s.push_row(0, &v(&[0, 1, 2]));
    }

    /// Gathers `entries` over `parent` the way the extension index does and
    /// measures the child store — the reference the batch must match.
    fn gather_and_measure(
        parent: &OccurrenceStore,
        entries: &[(u32, VertexId)],
        adds_vertex: bool,
        measure: SupportMeasure,
    ) -> usize {
        let mut child = OccurrenceStore::new(parent.arity() + usize::from(adds_vertex));
        for &(row, w) in entries {
            if adds_vertex {
                child.push_row_extended(parent.transaction(row as usize), parent.row(row as usize), w);
            } else {
                child.push_row(parent.transaction(row as usize), parent.row(row as usize));
            }
        }
        child.support(measure)
    }

    const ALL_MEASURES: [SupportMeasure; 4] = [
        SupportMeasure::EmbeddingCount,
        SupportMeasure::DistinctVertexSets,
        SupportMeasure::MinimumImage,
        SupportMeasure::Transactions,
    ];

    #[test]
    fn batched_support_matches_gather_and_measure() {
        let mut parent = OccurrenceStore::new(2);
        parent.push_row(0, &v(&[0, 1]));
        parent.push_row(0, &v(&[1, 2]));
        parent.push_row(1, &v(&[0, 1]));
        parent.push_row(1, &v(&[3, 4]));
        parent.push_row(2, &v(&[3, 4]));
        // ascending rows with a duplicate row, a gap, and shared new vertices
        let entries: Vec<(u32, VertexId)> =
            vec![(0, VertexId(7)), (0, VertexId(8)), (2, VertexId(7)), (4, VertexId(9))];
        let closing: Vec<(u32, VertexId)> = vec![(1, VertexId(0)), (3, VertexId(0)), (4, VertexId(0))];
        let mut batch = SupportBatch::new();
        for measure in ALL_MEASURES {
            batch.invalidate();
            assert_eq!(
                batch.support_extended(&parent, measure, &entries, true),
                gather_and_measure(&parent, &entries, true, measure),
                "new-vertex entries, measure {measure:?}"
            );
            batch.invalidate();
            assert_eq!(
                batch.support_extended(&parent, measure, &closing, false),
                gather_and_measure(&parent, &closing, false, measure),
                "closing-edge entries, measure {measure:?}"
            );
            assert_eq!(batch.support_extended(&parent, measure, &[], true), 0);
        }
    }

    #[test]
    fn batched_distinct_sets_collapse_across_different_parents() {
        // rows {8, 9} + w = 10 and {8, 10} + w = 9 produce the SAME child
        // vertex set {8, 9, 10}: the batch must count them once, exactly as
        // the gathered store does.
        let mut parent = OccurrenceStore::new(2);
        parent.push_row(0, &v(&[8, 9]));
        parent.push_row(0, &v(&[8, 10]));
        let entries: Vec<(u32, VertexId)> = vec![(0, VertexId(10)), (1, VertexId(9))];
        let mut batch = SupportBatch::new();
        let got = batch.support_extended(&parent, SupportMeasure::DistinctVertexSets, &entries, true);
        assert_eq!(got, 1);
        assert_eq!(got, gather_and_measure(&parent, &entries, true, SupportMeasure::DistinctVertexSets));
    }

    #[test]
    fn batch_reuse_across_parents_requires_invalidate() {
        let mut a = OccurrenceStore::new(1);
        a.push_row(0, &v(&[0]));
        a.push_row(0, &v(&[1]));
        let mut b = OccurrenceStore::new(1);
        b.push_row(0, &v(&[5]));
        b.push_row(1, &v(&[5]));
        let entries: Vec<(u32, VertexId)> = vec![(0, VertexId(9)), (1, VertexId(9))];
        let mut batch = SupportBatch::new();
        // child rows (tx 0, [0, 9]) and (tx 0, [1, 9]): the shared new
        // vertex caps the minimum image at 1
        assert_eq!(batch.support_extended(&a, SupportMeasure::MinimumImage, &entries, true), 1);
        batch.invalidate();
        // child rows (tx 0, [5, 9]) and (tx 1, [5, 9]): distinct
        // transactions keep every column at 2
        assert_eq!(batch.support_extended(&b, SupportMeasure::MinimumImage, &entries, true), 2);
    }
}
