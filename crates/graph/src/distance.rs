//! Shortest-path distances, eccentricities, the graph diameter, and the
//! **canonical diameter** of Definition 4.
//!
//! The canonical diameter `L_G` of a connected graph `G` is the smallest path
//! — under the total path order of Definition 3 — among all simple paths of
//! length `D(G)` that realize the diameter (i.e. shortest paths between some
//! pair of vertices at distance `D(G)`).  Every connected graph has exactly
//! one canonical diameter, which is the foundation for SkinnyMine's unique
//! pattern generation.

use crate::error::{GraphError, GraphResult};
use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use crate::path::{total_path_order, Path};
use crate::traversal::{bfs_distances, UNREACHABLE};
use std::cmp::Ordering;

/// All-pairs shortest path distances via one BFS per vertex.
/// `result[u][v]` is the hop distance, [`UNREACHABLE`] when disconnected.
pub fn all_pairs_distances(graph: &LabeledGraph) -> Vec<Vec<u32>> {
    graph.vertices().map(|v| bfs_distances(graph, v)).collect()
}

/// A square matrix of exact pairwise hop distances in one contiguous
/// allocation — the representation the miner maintains incrementally per
/// grown pattern, where cloning a `Vec<Vec<u32>>` per candidate extension
/// would dominate the growth loop.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DistMatrix {
    n: usize,
    d: Vec<u32>,
}

impl DistMatrix {
    /// The all-pairs distances of `graph` ([`UNREACHABLE`] when
    /// disconnected).
    pub fn all_pairs(graph: &LabeledGraph) -> Self {
        let n = graph.vertex_count();
        let mut d = Vec::with_capacity(n * n);
        for v in graph.vertices() {
            d.extend(bfs_distances(graph, v));
        }
        DistMatrix { n, d }
    }

    /// Builds a matrix from row vectors (all of length `rows.len()`).
    pub fn from_rows(rows: &[Vec<u32>]) -> Self {
        let n = rows.len();
        let mut d = Vec::with_capacity(n * n);
        for r in rows {
            assert_eq!(r.len(), n, "distance matrix must be square");
            d.extend_from_slice(r);
        }
        DistMatrix { n, d }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the empty matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between vertices `i` and `j`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> u32 {
        self.d[i * self.n + j]
    }

    /// Sets the distance between `i` and `j` (both orientations).
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: u32) {
        self.d[i * self.n + j] = value;
        self.d[j * self.n + i] = value;
    }

    /// Row `i` as a slice (distances from vertex `i`).
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.d[i * self.n..(i + 1) * self.n]
    }

    /// The largest entry — the graph diameter for a connected graph.
    pub fn max(&self) -> u32 {
        self.d.iter().copied().max().unwrap_or(0)
    }

    /// A new matrix extended by one vertex whose distances to the existing
    /// vertices are `row` (`row.len() == len()`); the new diagonal entry is
    /// 0.  Built in a single allocation straight from `self`.
    pub fn with_new_vertex(&self, row: &[u32]) -> DistMatrix {
        let mut out = DistMatrix::default();
        self.extend_with_vertex_into(row, &mut out);
        out
    }

    /// Copies `self` into a caller-provided matrix, reusing its buffer.
    pub fn clone_into_matrix(&self, out: &mut DistMatrix) {
        out.n = self.n;
        out.d.clear();
        out.d.extend_from_slice(&self.d);
    }

    /// [`DistMatrix::with_new_vertex`] into a caller-provided matrix:
    /// `out` becomes `self` extended by one vertex whose distances to the
    /// existing vertices are `row`, with no fresh allocation once `out`'s
    /// buffer is warm.  This is the incremental single-vertex structural
    /// update of the grow engines (an exact closed form when the new vertex
    /// cannot shorten any existing pair — e.g. a degree-1 attachment).
    pub fn extend_with_vertex_into(&self, row: &[u32], out: &mut DistMatrix) {
        assert_eq!(row.len(), self.n, "new row must cover the existing vertices");
        let n = self.n;
        out.n = n + 1;
        out.d.clear();
        out.d.reserve((n + 1) * (n + 1));
        for (old_row, &new_entry) in self.d.chunks_exact(n.max(1)).zip(row) {
            out.d.extend_from_slice(old_row);
            out.d.push(new_entry);
        }
        out.d.extend_from_slice(row);
        out.d.push(0);
    }

    /// Relaxes every pair through vertex `k`:
    /// `d(x, y) = min(d(x, y), d(x, k) + d(k, y))`.  With `k`'s row exact,
    /// this completes the incremental update for a multi-edge vertex
    /// attachment (a shortest path visits the new vertex at most once, so
    /// the closed form is exact).
    pub fn relax_through_vertex(&mut self, k: usize) {
        let n = self.n;
        for x in 0..n {
            if x == k {
                continue;
            }
            let dxk = self.get(x, k);
            for y in (x + 1)..n {
                if y == k {
                    continue;
                }
                let via = dxk + self.get(k, y);
                if via < self.get(x, y) {
                    self.set(x, y, via);
                }
            }
        }
    }

    /// Relaxes every pair through a freshly inserted edge `(u, v)`, reading
    /// the **pre-insertion** distances from `src` (self must start as a copy
    /// of `src`): a shortest path uses the new edge at most once, so
    /// `d(x, y) = min(d_old(x, y), d_old(x, u) + 1 + d_old(v, y),
    /// d_old(x, v) + 1 + d_old(u, y))` is exact — the incremental
    /// single-edge structural update of the grow engines.
    pub fn relax_closing_edge_from(&mut self, src: &DistMatrix, u: usize, v: usize) {
        debug_assert_eq!(self.n, src.n, "self must be a copy of src");
        let n = self.n;
        let row_u = src.row(u);
        let row_v = src.row(v);
        for x in 0..n {
            for y in (x + 1)..n {
                let via = (row_u[x] + 1 + row_v[y]).min(row_v[x] + 1 + row_u[y]);
                if via < self.get(x, y) {
                    self.set(x, y, via);
                }
            }
        }
    }
}

/// Eccentricity of every vertex (max distance to any other vertex).
/// Returns an error if the graph is empty or disconnected.
pub fn eccentricities(graph: &LabeledGraph) -> GraphResult<Vec<u32>> {
    if graph.vertex_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let mut ecc = Vec::with_capacity(graph.vertex_count());
    for v in graph.vertices() {
        let dist = bfs_distances(graph, v);
        let mut e = 0;
        for &d in &dist {
            if d == UNREACHABLE {
                return Err(GraphError::NotConnected);
            }
            e = e.max(d);
        }
        ecc.push(e);
    }
    Ok(ecc)
}

/// The diameter `D(G)`: maximum over all pairwise shortest distances.
/// Errors on empty or disconnected graphs.
pub fn diameter(graph: &LabeledGraph) -> GraphResult<u32> {
    Ok(eccentricities(graph)?.into_iter().max().unwrap_or(0))
}

/// Returns the smallest — under the total path order — shortest path from
/// `s` to `t`, or `None` if `t` is unreachable from `s`.
///
/// The algorithm works on the shortest-path DAG between `s` and `t`:
/// 1. a forward frontier sweep determines the lexicographically minimal
///    *label* sequence among all shortest `s → t` paths;
/// 2. the DAG is then restricted to vertices matching that label sequence and
///    a greedy smallest-physical-id walk extracts the unique minimal path.
pub fn min_shortest_path(graph: &LabeledGraph, s: VertexId, t: VertexId) -> Option<Path> {
    if s.index() >= graph.vertex_count() || t.index() >= graph.vertex_count() {
        return None;
    }
    if s == t {
        return Some(Path::single(s));
    }
    let dist_s = bfs_distances(graph, s);
    let dist_t = bfs_distances(graph, t);
    let d = dist_s[t.index()];
    if d == UNREACHABLE {
        return None;
    }
    // position(v) = i iff v can appear at step i of some shortest s->t path
    let on_dag = |v: VertexId, i: u32| dist_s[v.index()] == i && dist_t[v.index()] == d - i;

    // Phase 1: minimal label sequence via frontier sweep.
    let mut min_labels: Vec<Label> = Vec::with_capacity(d as usize + 1);
    let mut frontier: Vec<VertexId> = vec![s];
    min_labels.push(graph.label(s));
    let mut frontiers: Vec<Vec<VertexId>> = vec![frontier.clone()];
    for i in 0..d {
        let mut best: Option<Label> = None;
        let mut next: Vec<VertexId> = Vec::new();
        for &v in &frontier {
            for n in graph.neighbor_ids(v) {
                if !on_dag(n, i + 1) {
                    continue;
                }
                let l = graph.label(n);
                match best {
                    None => {
                        best = Some(l);
                        next.clear();
                        next.push(n);
                    }
                    Some(b) => match l.cmp(&b) {
                        Ordering::Less => {
                            best = Some(l);
                            next.clear();
                            next.push(n);
                        }
                        Ordering::Equal => {
                            if !next.contains(&n) {
                                next.push(n);
                            }
                        }
                        Ordering::Greater => {}
                    },
                }
            }
        }
        let best = best?;
        min_labels.push(best);
        next.sort();
        next.dedup();
        frontier = next;
        frontiers.push(frontier.clone());
    }

    // Phase 2: restrict to the minimal label sequence and compute, per
    // position, the vertices that can still reach `t` through label-matching
    // vertices (backward sweep) ...
    let mut allowed: Vec<Vec<VertexId>> = frontiers;
    // backward prune: allowed[i] keeps only vertices with a neighbor in allowed[i+1]
    for i in (0..d as usize).rev() {
        let next = allowed[i + 1].clone();
        allowed[i].retain(|&v| graph.neighbor_ids(v).any(|n| next.contains(&n)));
    }
    if allowed[0].is_empty() {
        return None;
    }

    // ... then greedily walk picking the smallest physical id at each step.
    let mut path = Vec::with_capacity(d as usize + 1);
    let mut current = s;
    path.push(current);
    for i in 0..d as usize {
        let next_allowed = &allowed[i + 1];
        let mut best: Option<VertexId> = None;
        for n in graph.neighbor_ids(current) {
            if next_allowed.contains(&n) && best.map(|b| n < b).unwrap_or(true) {
                best = Some(n);
            }
        }
        current = best?;
        path.push(current);
    }
    Some(Path::new_unchecked(path))
}

/// Decides whether `graph` is connected, has diameter exactly `expected_len`,
/// and the minimal vertex label sequence among its diameter-realizing
/// shortest paths equals `bound` — i.e. whether `bound` is the canonical
/// diameter's label sequence.
///
/// This is the hot verification primitive of the miner's per-extension
/// invariant checks: each per-pair sweep is
/// abandoned at the first label that exceeds `bound` (almost always the
/// first step), a label below `bound` decides `false` immediately, and the
/// sweep only runs to completion along prefixes equal to `bound`.
pub fn diameter_label_sequence_is_canonical(
    graph: &LabeledGraph,
    expected_len: u32,
    bound: &[Label],
) -> GraphResult<bool> {
    if graph.vertex_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let dists = DistMatrix::all_pairs(graph);
    if (0..dists.len()).any(|i| dists.row(i).contains(&UNREACHABLE)) {
        return Err(GraphError::NotConnected);
    }
    Ok(diameter_label_sequence_is_canonical_with(graph, &dists, expected_len, bound))
}

/// [`diameter_label_sequence_is_canonical`] with a caller-provided exact
/// all-pairs distance table (the graph must be connected) — the form the
/// miner uses with its incrementally-maintained distances.
pub fn diameter_label_sequence_is_canonical_with(
    graph: &LabeledGraph,
    dists: &DistMatrix,
    expected_len: u32,
    bound: &[Label],
) -> bool {
    let d = dists.max();
    if d != expected_len || bound.len() != d as usize + 1 {
        return false;
    }
    if d == 0 {
        return bound == [graph.label(VertexId(0))];
    }
    let mut achieved = false;
    for s in graph.vertices() {
        if graph.label(s) > bound[0] {
            continue;
        }
        for t in graph.vertices() {
            if s == t || dists.get(s.index(), t.index()) != d {
                continue;
            }
            if graph.label(s) < bound[0] {
                // a diameter path starting below the bound's head label is
                // already lexicographically smaller
                return false;
            }
            let dist_s = dists.row(s.index());
            let dist_t = dists.row(t.index());
            let on_dag = |v: VertexId, i: u32| dist_s[v.index()] == i && dist_t[v.index()] == d - i;
            let mut frontier: Vec<VertexId> = vec![s];
            let mut verdict = Ordering::Equal;
            for i in 0..d {
                let mut best: Option<Label> = None;
                let mut next: Vec<VertexId> = Vec::new();
                for &v in &frontier {
                    for n in graph.neighbor_ids(v) {
                        if !on_dag(n, i + 1) {
                            continue;
                        }
                        let l = graph.label(n);
                        match best {
                            None => {
                                best = Some(l);
                                next.push(n);
                            }
                            Some(b) => match l.cmp(&b) {
                                Ordering::Less => {
                                    best = Some(l);
                                    next.clear();
                                    next.push(n);
                                }
                                Ordering::Equal => next.push(n),
                                Ordering::Greater => {}
                            },
                        }
                    }
                }
                let best = best.expect("diameter pair frontier cannot dry up");
                match best.cmp(&bound[i as usize + 1]) {
                    // a strictly smaller sequence exists: every frontier
                    // prefix extends to a full shortest path by construction
                    Ordering::Less => return false,
                    Ordering::Greater => {
                        verdict = Ordering::Greater;
                        break;
                    }
                    Ordering::Equal => {}
                }
                next.sort_unstable();
                next.dedup();
                frontier = next;
            }
            if verdict == Ordering::Equal {
                achieved = true;
            }
        }
    }
    achieved
}

/// Computes the canonical diameter `L_G` of a connected graph (Definition 4):
/// the minimal path, under the total path order, among all shortest paths
/// whose length equals the diameter `D(G)` — considering both orientations of
/// every diameter-realizing pair.
pub fn canonical_diameter(graph: &LabeledGraph) -> GraphResult<Path> {
    if graph.vertex_count() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let dists = all_pairs_distances(graph);
    let mut d = 0u32;
    for row in &dists {
        for &x in row {
            if x == UNREACHABLE {
                return Err(GraphError::NotConnected);
            }
            d = d.max(x);
        }
    }
    let mut best: Option<Path> = None;
    for s in graph.vertices() {
        for t in graph.vertices() {
            if s == t || dists[s.index()][t.index()] != d {
                continue;
            }
            if let Some(p) = min_shortest_path(graph, s, t) {
                best = Some(match best {
                    None => p,
                    Some(b) => {
                        if total_path_order(graph, &p, &b) == Ordering::Less {
                            p
                        } else {
                            b
                        }
                    }
                });
            }
        }
    }
    match best {
        Some(p) => Ok(p),
        // a single-vertex graph has diameter 0; its canonical diameter is the
        // single-vertex path
        None if graph.vertex_count() == 1 => Ok(Path::single(VertexId(0))),
        None => Err(GraphError::NotConnected),
    }
}

/// Distance from every vertex to the closest vertex of `path`
/// (`Dist(v, L)` in the paper): a multi-source BFS seeded with the path's
/// vertices.  Vertices disconnected from the path get [`UNREACHABLE`].
pub fn distances_to_path(graph: &LabeledGraph, path: &Path) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.vertex_count()];
    let mut queue = std::collections::VecDeque::new();
    for &v in path.vertices() {
        if v.index() < graph.vertex_count() {
            dist[v.index()] = 0;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for n in graph.neighbor_ids(v) {
            if dist[n.index()] == UNREACHABLE {
                dist[n.index()] = dv + 1;
                queue.push_back(n);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example graph of Figure 3 (simplified): a 6-edge backbone
    /// 0-1-2-3-4-5-6 plus twigs.
    fn backbone_with_twigs() -> LabeledGraph {
        // labels chosen so the backbone is canonical: backbone labels all 0,
        // twig vertices have larger labels.
        let labels = vec![
            Label(0), // 0  backbone head
            Label(0), // 1
            Label(0), // 2
            Label(0), // 3
            Label(0), // 4
            Label(0), // 5
            Label(0), // 6  backbone tail
            Label(5), // 7  twig on 2
            Label(5), // 8  twig on 4 (level 1)
            Label(6), // 9  twig on 8 (level 2)
        ];
        LabeledGraph::from_unlabeled_edges(
            &labels,
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (2, 7), (4, 8), (8, 9)],
        )
        .unwrap()
    }

    #[test]
    fn diameter_of_path_graph() {
        let g = LabeledGraph::from_unlabeled_edges(&[Label(0); 4], [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(diameter(&g).unwrap(), 3);
        assert_eq!(eccentricities(&g).unwrap(), vec![3, 2, 2, 3]);
    }

    #[test]
    fn diameter_errors_on_disconnected() {
        let g = LabeledGraph::from_unlabeled_edges(&[Label(0); 3], [(0, 1)]).unwrap();
        assert_eq!(diameter(&g), Err(GraphError::NotConnected));
    }

    #[test]
    fn diameter_errors_on_empty() {
        assert_eq!(diameter(&LabeledGraph::new()), Err(GraphError::EmptyGraph));
    }

    #[test]
    fn all_pairs_matches_bfs() {
        let g = backbone_with_twigs();
        let ap = all_pairs_distances(&g);
        for v in g.vertices() {
            assert_eq!(ap[v.index()], bfs_distances(&g, v));
        }
    }

    #[test]
    fn min_shortest_path_trivial_cases() {
        let g = backbone_with_twigs();
        let p = min_shortest_path(&g, VertexId(3), VertexId(3)).unwrap();
        assert_eq!(p.len(), 0);
        assert!(min_shortest_path(&g, VertexId(0), VertexId(99)).is_none());
    }

    #[test]
    fn min_shortest_path_prefers_smaller_labels() {
        // two parallel length-2 routes from 0 to 3: via 1 (label 9) or via 2 (label 1)
        let g = LabeledGraph::from_unlabeled_edges(
            &[Label(0), Label(9), Label(1), Label(0)],
            [(0, 1), (1, 3), (0, 2), (2, 3)],
        )
        .unwrap();
        let p = min_shortest_path(&g, VertexId(0), VertexId(3)).unwrap();
        assert_eq!(p.vertices(), &[VertexId(0), VertexId(2), VertexId(3)]);
    }

    #[test]
    fn min_shortest_path_breaks_label_ties_by_id() {
        // two parallel routes with identical labels; must take the smaller id
        let g = LabeledGraph::from_unlabeled_edges(
            &[Label(0), Label(1), Label(1), Label(0)],
            [(0, 1), (1, 3), (0, 2), (2, 3)],
        )
        .unwrap();
        let p = min_shortest_path(&g, VertexId(0), VertexId(3)).unwrap();
        assert_eq!(p.vertices(), &[VertexId(0), VertexId(1), VertexId(3)]);
    }

    #[test]
    fn min_shortest_path_label_priority_over_ids() {
        // route A: 0 -> 1(label 2) -> 4 ; route B: 0 -> 2(label 1) -> 4
        // B has larger intermediate id but smaller label; labels win.
        let g = LabeledGraph::from_unlabeled_edges(
            &[Label(0), Label(2), Label(1), Label(9), Label(0)],
            [(0, 1), (1, 4), (0, 2), (2, 4), (0, 3), (3, 4)],
        )
        .unwrap();
        let p = min_shortest_path(&g, VertexId(0), VertexId(4)).unwrap();
        assert_eq!(p.vertices(), &[VertexId(0), VertexId(2), VertexId(4)]);
    }

    #[test]
    fn canonical_diameter_of_backbone_graph() {
        let g = backbone_with_twigs();
        // diameter is 0..6 plus twig 9 at distance 2 from vertex 4 -> the
        // longest shortest path: dist(0,9)=6? dist(0->4)=4, +2 = 6; dist(0,6)=6.
        // Canonical diameter should be the all-zero-label backbone, oriented
        // head=0.
        let l = canonical_diameter(&g).unwrap();
        assert_eq!(l.len(), 6);
        assert_eq!(
            l.vertices(),
            &[VertexId(0), VertexId(1), VertexId(2), VertexId(3), VertexId(4), VertexId(5), VertexId(6)]
        );
    }

    #[test]
    fn canonical_diameter_unique_on_symmetric_graph() {
        // a 4-cycle with identical labels: diameter 2, canonical diameter is
        // the id-minimal shortest path among all length-2 shortest paths
        let g = LabeledGraph::from_unlabeled_edges(&[Label(0); 4], [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let l = canonical_diameter(&g).unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l.vertices(), &[VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn canonical_diameter_single_vertex() {
        let mut g = LabeledGraph::new();
        g.add_vertex(Label(3));
        let l = canonical_diameter(&g).unwrap();
        assert_eq!(l.len(), 0);
        assert_eq!(l.vertices(), &[VertexId(0)]);
    }

    #[test]
    fn canonical_diameter_respects_label_order_on_endpoints() {
        // path graph with asymmetric labels: 2-0-0-1 ; canonical orientation
        // starts from the end with the smaller label sequence.
        let g = LabeledGraph::from_unlabeled_edges(
            &[Label(2), Label(0), Label(0), Label(1)],
            [(0, 1), (1, 2), (2, 3)],
        )
        .unwrap();
        let l = canonical_diameter(&g).unwrap();
        // label sequences: forward [2,0,0,1], backward [1,0,0,2]; backward smaller
        assert_eq!(l.vertices(), &[VertexId(3), VertexId(2), VertexId(1), VertexId(0)]);
    }

    #[test]
    fn distances_to_path_levels() {
        let g = backbone_with_twigs();
        let l = canonical_diameter(&g).unwrap();
        let levels = distances_to_path(&g, &l);
        assert_eq!(levels[0], 0);
        assert_eq!(levels[6], 0);
        assert_eq!(levels[7], 1);
        assert_eq!(levels[8], 1);
        assert_eq!(levels[9], 2);
    }

    #[test]
    fn distances_to_path_unreachable() {
        let g = LabeledGraph::from_unlabeled_edges(&[Label(0); 3], [(0, 1)]).unwrap();
        let p = Path::new_unchecked(vec![VertexId(0), VertexId(1)]);
        let d = distances_to_path(&g, &p);
        assert_eq!(d[2], UNREACHABLE);
    }
}
