//! Embeddings of patterns in data graphs and support measures.
//!
//! An embedding `e_P` of a pattern `P` in a graph `G` is a subgraph of `G`
//! isomorphic to `P`; we represent it as the vertex mapping
//! `pattern vertex i  ->  data vertex e.vertices[i]`.  The set of all
//! embeddings of `P` is `E[P]`, and the paper's single-graph problem asks for
//! `|E[P]| >= σ`.
//!
//! Several ways of counting `|E[P]|` are in common use; [`SupportMeasure`]
//! captures the ones needed for the reproduction.

use crate::graph::{LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One embedding of a pattern: `vertices[i]` is the data-graph vertex that
/// pattern vertex `i` maps to.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Embedding {
    /// Data-graph vertex per pattern vertex, indexed by pattern vertex id.
    pub vertices: Vec<VertexId>,
    /// Transaction index (0 for the single-graph setting).
    pub transaction: usize,
}

impl Embedding {
    /// Creates an embedding in the single-graph setting (transaction 0).
    pub fn new(vertices: Vec<VertexId>) -> Self {
        Embedding { vertices, transaction: 0 }
    }

    /// Creates an embedding inside a specific transaction graph.
    pub fn in_transaction(vertices: Vec<VertexId>, transaction: usize) -> Self {
        Embedding { vertices, transaction }
    }

    /// The data vertex that pattern vertex `p` maps to.
    #[inline]
    pub fn image(&self, p: usize) -> VertexId {
        self.vertices[p]
    }

    /// Number of pattern vertices covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True for the empty embedding.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// True if the embedding uses data vertex `v`.
    pub fn uses(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// The set of data vertices used, sorted — the "vertex set image" of the
    /// embedding, used to collapse automorphic duplicates.
    pub fn vertex_set(&self) -> Vec<VertexId> {
        let mut vs = self.vertices.clone();
        vs.sort();
        vs.dedup();
        vs
    }

    /// Extends the embedding with the image of one more pattern vertex.
    pub fn extended(&self, v: VertexId) -> Embedding {
        let mut vs = self.vertices.clone();
        vs.push(v);
        Embedding { vertices: vs, transaction: self.transaction }
    }

    /// Checks that this embedding is a genuine occurrence of `pattern` in
    /// `data`: labels match and every pattern edge maps to a data edge.
    /// Used by tests and verification, not by the hot mining path.
    pub fn is_valid(&self, pattern: &LabeledGraph, data: &LabeledGraph) -> bool {
        if self.vertices.len() != pattern.vertex_count() {
            return false;
        }
        // injectivity
        let distinct: HashSet<VertexId> = self.vertices.iter().copied().collect();
        if distinct.len() != self.vertices.len() {
            return false;
        }
        for p in pattern.vertices() {
            let d = self.vertices[p.index()];
            if d.index() >= data.vertex_count() || data.label(d) != pattern.label(p) {
                return false;
            }
        }
        for e in pattern.edges() {
            let du = self.vertices[e.u.index()];
            let dv = self.vertices[e.v.index()];
            if !data.has_edge(du, dv) {
                return false;
            }
            if data.edge_label(du, dv) != Some(e.label) {
                return false;
            }
        }
        true
    }
}

/// How `|E[P]| >= σ` is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SupportMeasure {
    /// Raw number of embeddings (vertex mappings).  Automorphic patterns are
    /// counted once per automorphism.
    EmbeddingCount,
    /// Number of distinct data-vertex sets among the embeddings.  This
    /// collapses automorphisms and matches the paper's "inject a pattern with
    /// s embeddings" semantics; it is the default for the reproduction.
    #[default]
    DistinctVertexSets,
    /// Minimum-image-based support (MNI): the minimum, over pattern vertices,
    /// of the number of distinct data vertices that vertex maps to.  MNI is
    /// anti-monotone in the single-graph setting.
    MinimumImage,
    /// Transaction support: number of distinct transactions containing at
    /// least one embedding (graph-transaction setting).
    Transactions,
}

/// The embeddings of one pattern, together with support computation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EmbeddingSet {
    /// All embeddings found.
    pub embeddings: Vec<Embedding>,
}

impl EmbeddingSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from a vector of embeddings.
    pub fn from_vec(embeddings: Vec<Embedding>) -> Self {
        EmbeddingSet { embeddings }
    }

    /// Adds an embedding.
    pub fn push(&mut self, e: Embedding) {
        self.embeddings.push(e);
    }

    /// Appends all embeddings of `other`, preserving their order (used by the
    /// parallel joins' ordered partial-result merge).
    pub fn append(&mut self, other: EmbeddingSet) {
        self.embeddings.extend(other.embeddings);
    }

    /// Number of raw embeddings.
    pub fn len(&self) -> usize {
        self.embeddings.len()
    }

    /// True when there is no embedding.
    pub fn is_empty(&self) -> bool {
        self.embeddings.is_empty()
    }

    /// Iterates over the embeddings.
    pub fn iter(&self) -> impl Iterator<Item = &Embedding> {
        self.embeddings.iter()
    }

    /// Number of distinct `(transaction, vertex set)` images.
    pub fn distinct_vertex_sets(&self) -> usize {
        let mut seen: HashSet<(usize, Vec<VertexId>)> = HashSet::with_capacity(self.embeddings.len());
        for e in &self.embeddings {
            seen.insert((e.transaction, e.vertex_set()));
        }
        seen.len()
    }

    /// Minimum-image-based (MNI) support.
    pub fn mni_support(&self) -> usize {
        if self.embeddings.is_empty() {
            return 0;
        }
        let k = self.embeddings[0].len();
        let mut min = usize::MAX;
        for p in 0..k {
            let distinct: HashSet<(usize, VertexId)> =
                self.embeddings.iter().map(|e| (e.transaction, e.image(p))).collect();
            min = min.min(distinct.len());
        }
        min
    }

    /// Number of distinct transactions with at least one embedding.
    pub fn transaction_support(&self) -> usize {
        let distinct: HashSet<usize> = self.embeddings.iter().map(|e| e.transaction).collect();
        distinct.len()
    }

    /// Support under the chosen measure.
    pub fn support(&self, measure: SupportMeasure) -> usize {
        match measure {
            SupportMeasure::EmbeddingCount => self.len(),
            SupportMeasure::DistinctVertexSets => self.distinct_vertex_sets(),
            SupportMeasure::MinimumImage => self.mni_support(),
            SupportMeasure::Transactions => self.transaction_support(),
        }
    }

    /// Deduplicates embeddings that are exactly equal (same mapping and
    /// transaction).
    pub fn dedup_exact(&mut self) {
        let mut seen = HashSet::with_capacity(self.embeddings.len());
        self.embeddings.retain(|e| seen.insert((e.transaction, e.vertices.clone())));
    }

    /// Keeps one embedding per distinct `(transaction, vertex set)` image,
    /// collapsing automorphic duplicates.
    pub fn dedup_by_vertex_set(&mut self) {
        let mut seen: HashSet<(usize, Vec<VertexId>)> = HashSet::with_capacity(self.embeddings.len());
        self.embeddings.retain(|e| seen.insert((e.transaction, e.vertex_set())));
    }
}

impl FromIterator<Embedding> for EmbeddingSet {
    fn from_iter<T: IntoIterator<Item = Embedding>>(iter: T) -> Self {
        EmbeddingSet { embeddings: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn embedding_basic_accessors() {
        let e = Embedding::new(v(&[3, 5, 7]));
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
        assert_eq!(e.image(1), VertexId(5));
        assert!(e.uses(VertexId(7)));
        assert!(!e.uses(VertexId(4)));
        assert_eq!(e.transaction, 0);
        let t = Embedding::in_transaction(v(&[0]), 4);
        assert_eq!(t.transaction, 4);
    }

    #[test]
    fn vertex_set_sorted_dedup() {
        let e = Embedding::new(v(&[9, 2, 5]));
        assert_eq!(e.vertex_set(), v(&[2, 5, 9]));
    }

    #[test]
    fn extended_appends() {
        let e = Embedding::in_transaction(v(&[1]), 2);
        let f = e.extended(VertexId(8));
        assert_eq!(f.vertices, v(&[1, 8]));
        assert_eq!(f.transaction, 2);
    }

    #[test]
    fn validity_check() {
        // data: triangle 0(a)-1(b)-2(a); pattern: edge a-b
        let data =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(0)], [(0, 1), (1, 2), (0, 2)])
                .unwrap();
        let pattern = LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1)], [(0, 1)]).unwrap();
        assert!(Embedding::new(v(&[0, 1])).is_valid(&pattern, &data));
        assert!(Embedding::new(v(&[2, 1])).is_valid(&pattern, &data));
        // wrong label
        assert!(!Embedding::new(v(&[1, 0])).is_valid(&pattern, &data));
        // missing edge: pattern edge maps to non-edge
        let pattern2 = LabeledGraph::from_unlabeled_edges(&[Label(0), Label(0)], [(0, 1)]).unwrap();
        assert!(Embedding::new(v(&[0, 2])).is_valid(&pattern2, &data));
        // non-injective
        assert!(!Embedding::new(v(&[0, 0])).is_valid(&pattern2, &data));
        // wrong arity
        assert!(!Embedding::new(v(&[0])).is_valid(&pattern, &data));
    }

    #[test]
    fn support_measures() {
        // pattern with 2 vertices; embeddings {0,1} both orders (automorphic)
        let mut set = EmbeddingSet::new();
        set.push(Embedding::new(v(&[0, 1])));
        set.push(Embedding::new(v(&[1, 0])));
        set.push(Embedding::new(v(&[2, 3])));
        assert_eq!(set.support(SupportMeasure::EmbeddingCount), 3);
        assert_eq!(set.support(SupportMeasure::DistinctVertexSets), 2);
        // vertex 0 of the pattern maps to {0,1,2} -> 3 ; vertex 1 maps to {1,0,3} -> 3
        assert_eq!(set.support(SupportMeasure::MinimumImage), 3);
        assert_eq!(set.support(SupportMeasure::Transactions), 1);
    }

    #[test]
    fn transaction_support_counts_distinct_transactions() {
        let mut set = EmbeddingSet::new();
        set.push(Embedding::in_transaction(v(&[0, 1]), 0));
        set.push(Embedding::in_transaction(v(&[0, 1]), 0));
        set.push(Embedding::in_transaction(v(&[4, 5]), 3));
        assert_eq!(set.transaction_support(), 2);
    }

    #[test]
    fn mni_support_of_empty_set_is_zero() {
        assert_eq!(EmbeddingSet::new().mni_support(), 0);
        assert_eq!(EmbeddingSet::new().support(SupportMeasure::MinimumImage), 0);
    }

    #[test]
    fn dedup_exact_and_by_vertex_set() {
        let mut set = EmbeddingSet::from_vec(vec![
            Embedding::new(v(&[0, 1])),
            Embedding::new(v(&[0, 1])),
            Embedding::new(v(&[1, 0])),
        ]);
        set.dedup_exact();
        assert_eq!(set.len(), 2);
        set.dedup_by_vertex_set();
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn default_measure_is_distinct_vertex_sets() {
        assert_eq!(SupportMeasure::default(), SupportMeasure::DistinctVertexSets);
    }

    #[test]
    fn from_iterator_collects() {
        let set: EmbeddingSet = vec![Embedding::new(v(&[1]))].into_iter().collect();
        assert_eq!(set.len(), 1);
    }
}
