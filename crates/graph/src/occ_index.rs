//! The occurrence join engine substrate: endpoint-indexed posting lists over
//! [`OccurrenceStore`] rows and epoch-stamped scratch tables.
//!
//! Stage I's occurrence-level joins (path concatenation and overlap merge)
//! and Stage II's extension enumeration are the mining hot loops.  This
//! module provides the two structures that make their per-row work
//! allocation-free:
//!
//! * [`OccurrenceIndex`] — CSR-style posting lists over row ids, grouped by
//!   `(transaction, vertex prefix)` in **first-occurrence order**, with the
//!   global row order preserved inside every group.  One build replaces the
//!   per-join `HashMap<(usize, Vec<VertexId>), Vec<u32>>` (which allocated a
//!   boxed key and a posting vector per distinct endpoint): the prefix keys
//!   are borrowed straight from the store's flat arena and the posting lists
//!   live in one contiguous buffer filled by a stable counting sort.
//! * [`VertexMarks`] / [`VertexSlots`] — dense epoch-stamped tables over data
//!   vertex ids.  Resetting is an epoch bump (O(1)), so per-row distinctness
//!   and reverse-image probes are O(k) array accesses with no clearing cost
//!   and no per-row heap allocation.
//! * [`JoinScratch`] — the per-worker bundle of reusable buffers the join
//!   bodies thread through their row loop.
//!
//! The design follows the order-preserving-index idea of dynamic query
//! evaluation (Berkholz et al.; Koch & Olteanu): precompute an index whose
//! iteration order equals the naive nested-loop order, then answer each
//! per-row probe in constant time.  Byte-identical output across thread
//! counts falls out of the order preservation.

use crate::graph::VertexId;
use crate::label::Label;
use crate::occurrence::OccurrenceStore;
use std::collections::HashMap;

/// CSR-style posting lists over the rows of one [`OccurrenceStore`], grouped
/// by `(transaction, row prefix of a fixed length)`.
///
/// Groups are numbered in first-occurrence order and every posting list keeps
/// the global row order, so iterating a group visits exactly the rows the
/// naive `HashMap<(transaction, prefix), Vec<row>>` grouping would, in the
/// same order.
#[derive(Debug)]
pub struct OccurrenceIndex<'a> {
    /// Prefix length (in vertices) the rows are grouped by.
    prefix_len: usize,
    /// Group id per distinct `(transaction, prefix)`, keyed by slices
    /// borrowed from the store arena (no key cloning).
    groups: HashMap<(u32, &'a [VertexId]), u32>,
    /// Start offset of each group's posting list (`groups + 1` entries).
    offsets: Vec<u32>,
    /// Row ids, grouped by group id, global row order inside each group.
    postings: Vec<u32>,
}

impl<'a> OccurrenceIndex<'a> {
    /// Builds the index grouping the store's rows by transaction and their
    /// first `prefix_len` vertices.
    ///
    /// # Panics
    /// Panics when `prefix_len` is zero or exceeds the store arity (for a
    /// non-empty store).
    pub fn by_prefix(store: &'a OccurrenceStore, prefix_len: usize) -> Self {
        if !store.is_empty() {
            assert!(
                prefix_len >= 1 && prefix_len <= store.arity(),
                "prefix length {prefix_len} out of range for arity {}",
                store.arity()
            );
        }
        let rows = store.len();
        let mut groups: HashMap<(u32, &'a [VertexId]), u32> = HashMap::with_capacity(rows);
        let mut group_of_row: Vec<u32> = Vec::with_capacity(rows);
        let mut ngroups = 0u32;
        for i in 0..rows {
            let key = (store.transaction(i) as u32, &store.row(i)[..prefix_len]);
            let g = *groups.entry(key).or_insert_with(|| {
                let g = ngroups;
                ngroups += 1;
                g
            });
            group_of_row.push(g);
        }
        let mut offsets = Vec::new();
        let mut postings = Vec::new();
        GroupSorter::new().group_into(&group_of_row, ngroups as usize, &mut offsets, &mut postings);
        OccurrenceIndex { prefix_len, groups, offsets, postings }
    }

    /// Prefix length the index groups by.
    #[inline]
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Number of distinct `(transaction, prefix)` groups.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The posting list (row ids in global row order) of `(transaction,
    /// key)`; empty when the group does not exist.  `key` can be any vertex
    /// slice of the index's prefix length — typically a suffix of another row
    /// — and is only borrowed for the lookup.
    #[inline]
    pub fn postings(&self, transaction: usize, key: &[VertexId]) -> &[u32] {
        debug_assert_eq!(key.len(), self.prefix_len, "lookup key length mismatch");
        match self.groups.get(&(transaction as u32, key)) {
            Some(&g) => {
                let (lo, hi) = (self.offsets[g as usize] as usize, self.offsets[g as usize + 1] as usize);
                &self.postings[lo..hi]
            }
            None => &[],
        }
    }
}

/// A dense epoch-stamped vertex set: `O(1)` insert/test over data vertex ids,
/// `O(1)` reset (epoch bump), zero per-reset clearing and — after warm-up —
/// zero allocation.
#[derive(Debug, Clone)]
pub struct VertexMarks {
    /// Current epoch; starts at 1 so zero-initialized stamps are unmarked.
    epoch: u32,
    stamp: Vec<u32>,
}

impl Default for VertexMarks {
    fn default() -> Self {
        VertexMarks { epoch: 1, stamp: Vec::new() }
    }
}

impl VertexMarks {
    /// Creates an empty mark table (grows on demand).
    pub fn new() -> Self {
        VertexMarks::default()
    }

    /// Starts a fresh empty set: O(1) except on epoch wrap-around.
    #[inline]
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Inserts `v`; returns `true` when it was not in the set yet.
    #[inline]
    pub fn mark(&mut self, v: VertexId) -> bool {
        let i = v.index();
        if i >= self.stamp.len() {
            self.stamp.resize((i + 1).next_power_of_two(), 0);
        }
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    /// True when `v` is in the set.
    #[inline]
    pub fn is_marked(&self, v: VertexId) -> bool {
        self.stamp.get(v.index()).is_some_and(|&s| s == self.epoch)
    }
}

/// A dense epoch-stamped map from data vertex id to a `u32` value (the
/// reverse image-of table of an embedding row): `O(1)` set/get, `O(1)` reset.
#[derive(Debug, Default, Clone)]
pub struct VertexSlots {
    marks: VertexMarks,
    value: Vec<u32>,
}

impl VertexSlots {
    /// Creates an empty map (grows on demand).
    pub fn new() -> Self {
        VertexSlots::default()
    }

    /// Starts a fresh empty map.
    #[inline]
    pub fn reset(&mut self) {
        self.marks.reset();
    }

    /// Maps `v` to `value` (last write wins within an epoch).
    #[inline]
    pub fn set(&mut self, v: VertexId, value: u32) {
        self.marks.mark(v);
        let i = v.index();
        if i >= self.value.len() {
            self.value.resize(self.marks.stamp.len(), 0);
        }
        self.value[i] = value;
    }

    /// The value `v` maps to in the current epoch, if any.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<u32> {
        if self.marks.is_marked(v) {
            Some(self.value[v.index()])
        } else {
            None
        }
    }
}

/// Reusable stable counting-sort grouping: turns a `group id per item` map
/// into CSR-style `(offsets, order)` posting lists whose per-group order is
/// the original item order.
///
/// This is the grouping kernel behind [`OccurrenceIndex::by_prefix`] and the
/// Stage-II extension table: both need "all items of group g, in
/// first-to-last discovery order" without building one `Vec` per group.  The
/// counts buffer is reused across calls, so steady-state grouping allocates
/// only when the output vectors grow.
#[derive(Debug, Default)]
pub struct GroupSorter {
    counts: Vec<u32>,
}

impl GroupSorter {
    /// Creates an empty sorter (buffers grow on first use, then stay).
    pub fn new() -> Self {
        GroupSorter::default()
    }

    /// Groups `0..group_of_item.len()` by `group_of_item[i] < ngroups`.
    ///
    /// On return `offsets` holds `ngroups + 1` exclusive prefix sums and
    /// `order[offsets[g]..offsets[g + 1]]` lists the items of group `g` in
    /// ascending item order (the sort is stable).  Both outputs are
    /// overwritten, not appended to.
    ///
    /// This is a two-pass histogram+scatter kernel: pass one builds the
    /// per-group histogram (and validates every group id), pass two scatters
    /// item indices through per-group cursors.  All buffers are sized up
    /// front — the inner loops perform no `Vec` growth and no bounds-checked
    /// pushes.
    pub fn group_into(
        &mut self,
        group_of_item: &[u32],
        ngroups: usize,
        offsets: &mut Vec<u32>,
        order: &mut Vec<u32>,
    ) {
        order.resize(group_of_item.len(), 0);
        self.histogram(group_of_item, ngroups, offsets);
        for (i, &g) in group_of_item.iter().enumerate() {
            // SAFETY: `histogram` panicked unless every `g < ngroups`, the
            // cursor for group `g` stays below `offsets[g + 1] <= len`, and
            // `order` was resized to `len` above.
            unsafe {
                let cursor = self.counts.get_unchecked_mut(g as usize);
                *order.get_unchecked_mut(*cursor as usize) = i as u32;
                *cursor += 1;
            }
        }
    }

    /// Like [`GroupSorter::group_into`], but scatters a `Copy` payload per
    /// item directly into grouped position instead of emitting item indices —
    /// one pass of data movement replaces the order-then-gather indirection
    /// when the caller only needs the grouped payloads.
    ///
    /// `payload.len()` must equal `group_of_item.len()`; per-group payload
    /// order is the original item order (stable).
    pub fn scatter_by_group<T: Copy + Default>(
        &mut self,
        group_of_item: &[u32],
        payload: &[T],
        ngroups: usize,
        offsets: &mut Vec<u32>,
        out: &mut Vec<T>,
    ) {
        assert_eq!(group_of_item.len(), payload.len());
        out.resize(payload.len(), T::default());
        self.histogram(group_of_item, ngroups, offsets);
        for (&g, &value) in group_of_item.iter().zip(payload) {
            // SAFETY: same invariants as the scatter in `group_into`.
            unsafe {
                let cursor = self.counts.get_unchecked_mut(g as usize);
                *out.get_unchecked_mut(*cursor as usize) = value;
                *cursor += 1;
            }
        }
    }

    /// Pass one of the kernel: histogram into `counts` (bounds-checked, so a
    /// group id `>= ngroups` panics here rather than corrupting the scatter),
    /// exclusive prefix sums into `offsets` (written by index into a resized
    /// buffer, no per-group push), and `counts` rewound into write cursors.
    fn histogram(&mut self, group_of_item: &[u32], ngroups: usize, offsets: &mut Vec<u32>) {
        self.counts.clear();
        self.counts.resize(ngroups, 0);
        for &g in group_of_item {
            self.counts[g as usize] += 1;
        }
        offsets.resize(ngroups + 1, 0);
        let mut acc = 0u32;
        for (slot, &c) in offsets[..ngroups].iter_mut().zip(&self.counts) {
            *slot = acc;
            acc += c;
        }
        offsets[ngroups] = acc;
        // reuse the counts buffer as the write cursor of each group
        self.counts.copy_from_slice(&offsets[..ngroups]);
    }
}

/// An **owned** prefix-grouped posting index over [`OccurrenceStore`] rows —
/// the level-carried sibling of [`OccurrenceIndex`].
///
/// Where [`OccurrenceIndex`] borrows its keys from the store (and therefore
/// must be rebuilt from a fresh `HashMap` every time the store it borrows
/// from is replaced), `PrefixIndex` owns all of its arenas: group lookup runs
/// on an epoch-stamped open-addressing table keyed by a multiply-fold hash of
/// `(transaction, prefix)` with collisions verified against each group's
/// **representative row** in the store, so a warm rebuild over a new store
/// touches no allocator at all (pinned in `tests/alloc_hot_loops.rs` via the
/// ladder-level rebuild).  Group ids are assigned in first-occurrence scan
/// order and every posting list keeps the global row order — the same
/// iteration contract as [`OccurrenceIndex::by_prefix`], property-tested
/// byte-identical in `crates/graph/tests/occ_index_properties.rs`.
#[derive(Debug, Default)]
pub struct PrefixIndex {
    /// Prefix length (in vertices) the rows are grouped by.
    prefix_len: usize,
    /// Epoch of the open-addressing table (starts at 1 like [`KeyMarks`]).
    epoch: u32,
    /// Per-slot epoch stamp of the lookup table.
    stamp: Vec<u32>,
    /// Per-slot group id of the lookup table.
    slot_group: Vec<u32>,
    /// Representative (first) row id per group — the collision verifier.
    first_row: Vec<u32>,
    /// Transaction per group (saves re-reading the store on verify).
    group_txn: Vec<u32>,
    /// Group id per row of the last built store.
    group_of_row: Vec<u32>,
    /// Start offset of each group's posting list (`groups + 1` entries).
    offsets: Vec<u32>,
    /// Row ids, grouped by group id, global row order inside each group.
    postings: Vec<u32>,
    /// Reused counting-sort kernel for the posting scatter.
    sorter: GroupSorter,
}

impl PrefixIndex {
    /// Creates an empty index (arenas grow on first build, then stay).
    pub fn new() -> Self {
        PrefixIndex { epoch: 1, ..Default::default() }
    }

    /// Multiply-fold hash of a `(transaction, prefix)` key.
    #[inline]
    fn hash_key(transaction: u32, prefix: &[VertexId]) -> u64 {
        let mut h = (transaction as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        for &v in prefix {
            h = (h ^ v.0 as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        h ^ (h >> 32)
    }

    /// (Re)builds the index over `store`, grouping rows by transaction and
    /// their first `prefix_len` vertices.  Group numbering is
    /// first-occurrence scan order, posting lists keep global row order.
    /// Warm rebuilds (table already sized for the row count) allocate
    /// nothing.
    ///
    /// # Panics
    /// Panics when `prefix_len` is zero or exceeds the store arity (for a
    /// non-empty store).
    pub fn build(&mut self, store: &OccurrenceStore, prefix_len: usize) {
        if !store.is_empty() {
            assert!(
                prefix_len >= 1 && prefix_len <= store.arity(),
                "prefix length {prefix_len} out of range for arity {}",
                store.arity()
            );
        }
        self.prefix_len = prefix_len;
        let rows = store.len();
        // size the lookup table for the worst case (every row its own group)
        // up front, so the insert loop never rehashes mid-build
        let cap = (rows * 2).next_power_of_two().max(64);
        if self.stamp.len() < cap {
            self.stamp.clear();
            self.stamp.resize(cap, 0);
            self.slot_group.resize(cap, 0);
            self.epoch = 1;
        } else if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.first_row.clear();
        self.group_txn.clear();
        self.group_of_row.clear();
        let mask = self.stamp.len() - 1;
        for i in 0..rows {
            let t = store.transaction(i) as u32;
            let prefix = &store.row(i)[..prefix_len];
            let mut s = (Self::hash_key(t, prefix) as usize) & mask;
            let g = loop {
                if self.stamp[s] != self.epoch {
                    // first occurrence of this (transaction, prefix)
                    let g = self.first_row.len() as u32;
                    self.stamp[s] = self.epoch;
                    self.slot_group[s] = g;
                    self.first_row.push(i as u32);
                    self.group_txn.push(t);
                    break g;
                }
                let g = self.slot_group[s];
                if self.group_txn[g as usize] == t
                    && &store.row(self.first_row[g as usize] as usize)[..prefix_len] == prefix
                {
                    break g;
                }
                s = (s + 1) & mask;
            };
            self.group_of_row.push(g);
        }
        self.sorter.group_into(
            &self.group_of_row,
            self.first_row.len(),
            &mut self.offsets,
            &mut self.postings,
        );
    }

    /// Prefix length the index groups by.
    #[inline]
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Number of distinct `(transaction, prefix)` groups.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.first_row.len()
    }

    /// The posting list (row ids in global row order) of `(transaction,
    /// key)` in `store` — which must be the store the index was built over;
    /// empty when the group does not exist.  `key` can be any vertex slice of
    /// the index's prefix length, typically a suffix of another row.
    #[inline]
    pub fn postings<'s>(
        &'s self,
        store: &OccurrenceStore,
        transaction: usize,
        key: &[VertexId],
    ) -> &'s [u32] {
        debug_assert_eq!(key.len(), self.prefix_len, "lookup key length mismatch");
        if self.stamp.is_empty() {
            return &[];
        }
        let t = transaction as u32;
        let mask = self.stamp.len() - 1;
        let mut s = (Self::hash_key(t, key) as usize) & mask;
        loop {
            if self.stamp[s] != self.epoch {
                return &[];
            }
            let g = self.slot_group[s] as usize;
            if self.group_txn[g] == t && &store.row(self.first_row[g] as usize)[..self.prefix_len] == key {
                let (lo, hi) = (self.offsets[g] as usize, self.offsets[g + 1] as usize);
                return &self.postings[lo..hi];
            }
            s = (s + 1) & mask;
        }
    }
}

/// A dense epoch-stamped `u64 → u32` memo table (open addressing, linear
/// probing): `O(1)` get/insert, `O(1)` reset via epoch bump, zero allocation
/// after warm-up.
///
/// This is the Stage-I joins' **pattern-pair memo**: every directed
/// occurrence row's label sequence is fully determined by its source
/// `(pattern, direction)`, so all join products of one source pair share one
/// canonical key — the memo caches `(packed source pair) → (pattern slot,
/// orientation)` so only the *first* product of a pair pays label assembly,
/// canonicalization and the interning hash; every later product is routed to
/// its slot by one probe of this table.
#[derive(Debug, Clone)]
pub struct PairMemo {
    /// Current epoch; starts at 1 so zero-initialized stamps are unmarked.
    epoch: u32,
    stamp: Vec<u32>,
    key: Vec<u64>,
    value: Vec<u32>,
    /// Entries inserted in the current epoch (drives load-factor growth).
    live: usize,
}

impl Default for PairMemo {
    fn default() -> Self {
        PairMemo { epoch: 1, stamp: Vec::new(), key: Vec::new(), value: Vec::new(), live: 0 }
    }
}

impl PairMemo {
    /// Creates an empty memo (the table grows on demand).
    pub fn new() -> Self {
        PairMemo::default()
    }

    /// Starts a fresh empty memo: O(1) except on epoch wrap-around.
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.live = 0;
    }

    #[inline]
    fn slot(stamp: &[u32], key: &[u64], epoch: u32, k: u64) -> (usize, bool) {
        let mask = stamp.len() - 1;
        let h = k.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut i = (h >> 32) as usize & mask;
        loop {
            if stamp[i] != epoch {
                return (i, false);
            }
            if key[i] == k {
                return (i, true);
            }
            i = (i + 1) & mask;
        }
    }

    /// The memoized value of `k` in the current epoch, if any.
    #[inline]
    pub fn get(&self, k: u64) -> Option<u32> {
        if self.stamp.is_empty() {
            return None;
        }
        let (i, present) = Self::slot(&self.stamp, &self.key, self.epoch, k);
        present.then(|| self.value[i])
    }

    /// Memoizes `k → value` (first write wins within an epoch).
    pub fn insert(&mut self, k: u64, value: u32) {
        if self.stamp.is_empty() || self.live * 8 >= self.stamp.len() * 7 {
            self.grow();
        }
        let (i, present) = Self::slot(&self.stamp, &self.key, self.epoch, k);
        if present {
            return;
        }
        self.stamp[i] = self.epoch;
        self.key[i] = k;
        self.value[i] = value;
        self.live += 1;
    }

    /// Doubles the table, re-inserting the current epoch's entries.
    fn grow(&mut self) {
        let cap = (self.stamp.len() * 2).max(64);
        let old_stamp = std::mem::replace(&mut self.stamp, vec![0; cap]);
        let old_key = std::mem::replace(&mut self.key, vec![0; cap]);
        let old_value = std::mem::replace(&mut self.value, vec![0; cap]);
        for ((s, k), v) in old_stamp.into_iter().zip(old_key).zip(old_value) {
            if s == self.epoch {
                let (i, present) = Self::slot(&self.stamp, &self.key, self.epoch, k);
                debug_assert!(!present, "rehash re-inserts distinct keys");
                self.stamp[i] = self.epoch;
                self.key[i] = k;
                self.value[i] = v;
            }
        }
    }
}

/// A dense epoch-stamped set of `u128` keys (open addressing, linear
/// probing): `O(1)` insert/test, `O(1)` reset via epoch bump, zero
/// allocation after warm-up.
///
/// Where [`VertexMarks`] answers "was this *data vertex* seen in the current
/// row", `KeyMarks` answers the same question for composite keys — e.g. the
/// `(attach vertex, vertex label, edge label)` triple of a candidate
/// extension, packed into one `u128` — so per-row probe deduplication never
/// touches an ordered container.
#[derive(Debug, Clone)]
pub struct KeyMarks {
    /// Current epoch; starts at 1 so zero-initialized stamps are unmarked.
    epoch: u32,
    stamp: Vec<u32>,
    key: Vec<u128>,
    /// Keys inserted in the current epoch (drives the load-factor growth).
    live: usize,
}

impl Default for KeyMarks {
    fn default() -> Self {
        KeyMarks { epoch: 1, stamp: Vec::new(), key: Vec::new(), live: 0 }
    }
}

impl KeyMarks {
    /// Creates an empty set (the table grows on demand).
    pub fn new() -> Self {
        KeyMarks::default()
    }

    /// Starts a fresh empty set: O(1) except on epoch wrap-around.
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.live = 0;
    }

    #[inline]
    fn slot(stamp: &[u32], key: &[u128], epoch: u32, k: u128) -> (usize, bool) {
        // multiply-fold hash of both halves; the table length is a power of two
        let mask = stamp.len() - 1;
        let h = ((k as u64) ^ (k >> 64) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut i = (h >> 32) as usize & mask;
        loop {
            if stamp[i] != epoch {
                return (i, false);
            }
            if key[i] == k {
                return (i, true);
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `k`; returns `true` when it was not in the set yet.
    pub fn insert(&mut self, k: u128) -> bool {
        if self.stamp.is_empty() || self.live * 8 >= self.stamp.len() * 7 {
            self.grow();
        }
        let (i, present) = Self::slot(&self.stamp, &self.key, self.epoch, k);
        if present {
            return false;
        }
        self.stamp[i] = self.epoch;
        self.key[i] = k;
        self.live += 1;
        true
    }

    /// True when `k` is in the set.
    pub fn contains(&self, k: u128) -> bool {
        if self.stamp.is_empty() {
            return false;
        }
        Self::slot(&self.stamp, &self.key, self.epoch, k).1
    }

    /// Doubles the table, re-inserting the current epoch's keys (growth can
    /// strike mid-epoch, so live entries must survive the rehash).
    fn grow(&mut self) {
        let cap = (self.stamp.len() * 2).max(64);
        let old_stamp = std::mem::replace(&mut self.stamp, vec![0; cap]);
        let old_key = std::mem::replace(&mut self.key, vec![0; cap]);
        for (s, k) in old_stamp.into_iter().zip(old_key) {
            if s == self.epoch {
                let (i, present) = Self::slot(&self.stamp, &self.key, self.epoch, k);
                debug_assert!(!present, "rehash re-inserts distinct keys");
                self.stamp[i] = self.epoch;
                self.key[i] = k;
            }
        }
    }
}

/// Per-worker scratch for the occurrence joins: one epoch-mark table plus
/// reusable row/label buffers.  Everything is cleared by `O(1)` resets, so a
/// join body that rejects a row touches no allocator at all.
#[derive(Debug, Default)]
pub struct JoinScratch {
    /// Distinctness / membership marks over data vertex ids.
    pub marks: VertexMarks,
    /// Reusable combined-row buffer.
    pub row: Vec<VertexId>,
    /// Reusable vertex-label buffer of the combined row.
    pub vertex_labels: Vec<Label>,
    /// Reusable edge-label buffer of the combined row.
    pub edge_labels: Vec<Label>,
    /// Pattern-pair interning memo for the Stage-I join kernels.
    pub pair_memo: PairMemo,
}

impl JoinScratch {
    /// Creates an empty scratch (buffers grow on first use, then stay).
    pub fn new() -> Self {
        JoinScratch::default()
    }
}

/// True when all vertices of `vs` are distinct — `O(|vs|)` probes against the
/// scratch mark table, no allocation, no sort.
pub fn all_distinct_marked(vs: &[VertexId], marks: &mut VertexMarks) -> bool {
    marks.reset();
    vs.iter().all(|&v| marks.mark(v))
}

/// True when directed rows `a` and `b` (with `a.last() == b.first()`) share
/// only the junction vertex — `O(|a| + |b|)` probes, no allocation.
pub fn disjoint_except_shared_marked(a: &[VertexId], b: &[VertexId], marks: &mut VertexMarks) -> bool {
    debug_assert_eq!(a.last(), b.first());
    marks.reset();
    for &v in a {
        marks.mark(v);
    }
    b[1..].iter().all(|&v| !marks.is_marked(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    fn store() -> OccurrenceStore {
        let mut s = OccurrenceStore::new(3);
        s.push_row(0, &v(&[0, 1, 2]));
        s.push_row(0, &v(&[0, 1, 3]));
        s.push_row(1, &v(&[0, 1, 2]));
        s.push_row(0, &v(&[2, 1, 0]));
        s.push_row(0, &v(&[0, 2, 4]));
        s
    }

    #[test]
    fn postings_group_by_prefix_in_row_order() {
        let s = store();
        let idx = OccurrenceIndex::by_prefix(&s, 2);
        assert_eq!(idx.prefix_len(), 2);
        assert_eq!(idx.group_count(), 4);
        assert_eq!(idx.postings(0, &v(&[0, 1])), &[0, 1]);
        assert_eq!(idx.postings(1, &v(&[0, 1])), &[2]);
        assert_eq!(idx.postings(0, &v(&[2, 1])), &[3]);
        assert_eq!(idx.postings(0, &v(&[0, 2])), &[4]);
        assert!(idx.postings(0, &v(&[9, 9])).is_empty());
        assert!(idx.postings(7, &v(&[0, 1])).is_empty());
    }

    #[test]
    fn head_index_is_a_length_one_prefix() {
        let s = store();
        let idx = OccurrenceIndex::by_prefix(&s, 1);
        assert_eq!(idx.postings(0, &v(&[0])), &[0, 1, 4]);
        assert_eq!(idx.postings(0, &v(&[2])), &[3]);
        // a lookup key borrowed from another row's suffix works
        let row = s.row(3);
        assert_eq!(idx.postings(0, &row[2..]), &[0, 1, 4]);
    }

    #[test]
    fn empty_store_indexes_fine() {
        let s = OccurrenceStore::new(4);
        let idx = OccurrenceIndex::by_prefix(&s, 2);
        assert_eq!(idx.group_count(), 0);
        assert!(idx.postings(0, &v(&[0, 1])).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_prefix_panics() {
        let s = store();
        let _ = OccurrenceIndex::by_prefix(&s, 4);
    }

    #[test]
    fn marks_reset_is_cheap_and_correct() {
        let mut m = VertexMarks::new();
        assert!(m.mark(VertexId(3)));
        assert!(!m.mark(VertexId(3)));
        assert!(m.is_marked(VertexId(3)));
        assert!(!m.is_marked(VertexId(4)));
        m.reset();
        assert!(!m.is_marked(VertexId(3)));
        assert!(m.mark(VertexId(3)));
    }

    #[test]
    fn marks_survive_epoch_wraparound() {
        let mut m = VertexMarks::new();
        m.mark(VertexId(1));
        m.epoch = u32::MAX - 1;
        // the stale stamp of vertex 1 must not leak into the next epochs
        m.reset();
        assert!(!m.is_marked(VertexId(1)));
        m.mark(VertexId(2));
        m.reset(); // wraps
        assert!(!m.is_marked(VertexId(1)));
        assert!(!m.is_marked(VertexId(2)));
        assert!(m.mark(VertexId(2)));
    }

    #[test]
    fn slots_map_and_reset() {
        let mut s = VertexSlots::new();
        s.set(VertexId(5), 2);
        s.set(VertexId(0), 7);
        assert_eq!(s.get(VertexId(5)), Some(2));
        assert_eq!(s.get(VertexId(0)), Some(7));
        assert_eq!(s.get(VertexId(1)), None);
        s.set(VertexId(5), 9);
        assert_eq!(s.get(VertexId(5)), Some(9));
        s.reset();
        assert_eq!(s.get(VertexId(5)), None);
    }

    #[test]
    fn group_sorter_is_stable_and_reusable() {
        let mut sorter = GroupSorter::new();
        let mut offsets = Vec::new();
        let mut order = Vec::new();
        sorter.group_into(&[1, 0, 1, 2, 0, 1], 3, &mut offsets, &mut order);
        assert_eq!(offsets, vec![0, 2, 5, 6]);
        assert_eq!(&order[0..2], &[1, 4]);
        assert_eq!(&order[2..5], &[0, 2, 5]);
        assert_eq!(&order[5..6], &[3]);
        // reuse with a different shape overwrites the outputs
        sorter.group_into(&[0, 0], 1, &mut offsets, &mut order);
        assert_eq!(offsets, vec![0, 2]);
        assert_eq!(order, vec![0, 1]);
        sorter.group_into(&[], 0, &mut offsets, &mut order);
        assert_eq!(offsets, vec![0]);
        assert!(order.is_empty());
    }

    #[test]
    fn group_sorter_scatters_payloads_in_stable_order() {
        let mut sorter = GroupSorter::new();
        let mut offsets = Vec::new();
        let mut out = Vec::new();
        let groups = [1u32, 0, 1, 2, 0, 1];
        let payload = [10u32, 11, 12, 13, 14, 15];
        sorter.scatter_by_group(&groups, &payload, 3, &mut offsets, &mut out);
        assert_eq!(offsets, vec![0, 2, 5, 6]);
        assert_eq!(out, vec![11, 14, 10, 12, 15, 13]);
        // reuse with a different shape overwrites the outputs
        sorter.scatter_by_group(&[0, 0], &[7u32, 8], 1, &mut offsets, &mut out);
        assert_eq!(offsets, vec![0, 2]);
        assert_eq!(out, vec![7, 8]);
        sorter.scatter_by_group::<u32>(&[], &[], 0, &mut offsets, &mut out);
        assert_eq!(offsets, vec![0]);
        assert!(out.is_empty());
    }

    #[test]
    fn key_marks_insert_reset_and_grow() {
        let mut m = KeyMarks::new();
        assert!(!m.contains(7));
        assert!(m.insert(7));
        assert!(!m.insert(7));
        assert!(m.contains(7));
        m.reset();
        assert!(!m.contains(7));
        assert!(m.insert(7));
        // push the table through several growths within one epoch
        m.reset();
        for k in 0..500u128 {
            assert!(m.insert(k * 0x1_0000_0001));
        }
        for k in 0..500u128 {
            assert!(!m.insert(k * 0x1_0000_0001), "key {k} must still be present after growth");
        }
        assert!(!m.contains(999 * 0x1_0000_0001));
    }

    #[test]
    fn key_marks_survive_epoch_wraparound() {
        let mut m = KeyMarks::new();
        m.insert(1);
        m.epoch = u32::MAX - 1;
        m.reset();
        assert!(!m.contains(1));
        m.insert(2);
        m.reset(); // wraps
        assert!(!m.contains(1));
        assert!(!m.contains(2));
        assert!(m.insert(2));
    }

    #[test]
    fn distinctness_helpers() {
        let mut marks = VertexMarks::new();
        assert!(all_distinct_marked(&v(&[0, 1, 2]), &mut marks));
        assert!(!all_distinct_marked(&v(&[0, 1, 0]), &mut marks));
        assert!(disjoint_except_shared_marked(&v(&[0, 1, 2]), &v(&[2, 3, 4]), &mut marks));
        assert!(!disjoint_except_shared_marked(&v(&[0, 1, 2]), &v(&[2, 1, 5]), &mut marks));
    }
}
