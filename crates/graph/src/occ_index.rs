//! The occurrence join engine substrate: endpoint-indexed posting lists over
//! [`OccurrenceStore`] rows and epoch-stamped scratch tables.
//!
//! Stage I's occurrence-level joins (path concatenation and overlap merge)
//! and Stage II's extension enumeration are the mining hot loops.  This
//! module provides the two structures that make their per-row work
//! allocation-free:
//!
//! * [`OccurrenceIndex`] — CSR-style posting lists over row ids, grouped by
//!   `(transaction, vertex prefix)` in **first-occurrence order**, with the
//!   global row order preserved inside every group.  One build replaces the
//!   per-join `HashMap<(usize, Vec<VertexId>), Vec<u32>>` (which allocated a
//!   boxed key and a posting vector per distinct endpoint): the prefix keys
//!   are borrowed straight from the store's flat arena and the posting lists
//!   live in one contiguous buffer filled by a stable counting sort.
//! * [`VertexMarks`] / [`VertexSlots`] — dense epoch-stamped tables over data
//!   vertex ids.  Resetting is an epoch bump (O(1)), so per-row distinctness
//!   and reverse-image probes are O(k) array accesses with no clearing cost
//!   and no per-row heap allocation.
//! * [`JoinScratch`] — the per-worker bundle of reusable buffers the join
//!   bodies thread through their row loop.
//!
//! The design follows the order-preserving-index idea of dynamic query
//! evaluation (Berkholz et al.; Koch & Olteanu): precompute an index whose
//! iteration order equals the naive nested-loop order, then answer each
//! per-row probe in constant time.  Byte-identical output across thread
//! counts falls out of the order preservation.

use crate::graph::VertexId;
use crate::label::Label;
use crate::occurrence::OccurrenceStore;
use std::collections::HashMap;

/// CSR-style posting lists over the rows of one [`OccurrenceStore`], grouped
/// by `(transaction, row prefix of a fixed length)`.
///
/// Groups are numbered in first-occurrence order and every posting list keeps
/// the global row order, so iterating a group visits exactly the rows the
/// naive `HashMap<(transaction, prefix), Vec<row>>` grouping would, in the
/// same order.
#[derive(Debug)]
pub struct OccurrenceIndex<'a> {
    /// Prefix length (in vertices) the rows are grouped by.
    prefix_len: usize,
    /// Group id per distinct `(transaction, prefix)`, keyed by slices
    /// borrowed from the store arena (no key cloning).
    groups: HashMap<(u32, &'a [VertexId]), u32>,
    /// Start offset of each group's posting list (`groups + 1` entries).
    offsets: Vec<u32>,
    /// Row ids, grouped by group id, global row order inside each group.
    postings: Vec<u32>,
}

impl<'a> OccurrenceIndex<'a> {
    /// Builds the index grouping the store's rows by transaction and their
    /// first `prefix_len` vertices.
    ///
    /// # Panics
    /// Panics when `prefix_len` is zero or exceeds the store arity (for a
    /// non-empty store).
    pub fn by_prefix(store: &'a OccurrenceStore, prefix_len: usize) -> Self {
        if !store.is_empty() {
            assert!(
                prefix_len >= 1 && prefix_len <= store.arity(),
                "prefix length {prefix_len} out of range for arity {}",
                store.arity()
            );
        }
        let rows = store.len();
        let mut groups: HashMap<(u32, &'a [VertexId]), u32> = HashMap::with_capacity(rows);
        let mut group_of_row: Vec<u32> = Vec::with_capacity(rows);
        let mut counts: Vec<u32> = Vec::new();
        for i in 0..rows {
            let key = (store.transaction(i) as u32, &store.row(i)[..prefix_len]);
            let next = counts.len() as u32;
            let g = *groups.entry(key).or_insert(next);
            if g == next {
                counts.push(0);
            }
            counts[g as usize] += 1;
            group_of_row.push(g);
        }
        // exclusive prefix sums -> group offsets, then a stable counting sort
        // of the row ids into one contiguous posting buffer
        let mut offsets: Vec<u32> = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..counts.len()].to_vec();
        let mut postings = vec![0u32; rows];
        for (i, &g) in group_of_row.iter().enumerate() {
            postings[cursor[g as usize] as usize] = i as u32;
            cursor[g as usize] += 1;
        }
        OccurrenceIndex { prefix_len, groups, offsets, postings }
    }

    /// Prefix length the index groups by.
    #[inline]
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Number of distinct `(transaction, prefix)` groups.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The posting list (row ids in global row order) of `(transaction,
    /// key)`; empty when the group does not exist.  `key` can be any vertex
    /// slice of the index's prefix length — typically a suffix of another row
    /// — and is only borrowed for the lookup.
    #[inline]
    pub fn postings(&self, transaction: usize, key: &[VertexId]) -> &[u32] {
        debug_assert_eq!(key.len(), self.prefix_len, "lookup key length mismatch");
        match self.groups.get(&(transaction as u32, key)) {
            Some(&g) => {
                let (lo, hi) = (self.offsets[g as usize] as usize, self.offsets[g as usize + 1] as usize);
                &self.postings[lo..hi]
            }
            None => &[],
        }
    }
}

/// A dense epoch-stamped vertex set: `O(1)` insert/test over data vertex ids,
/// `O(1)` reset (epoch bump), zero per-reset clearing and — after warm-up —
/// zero allocation.
#[derive(Debug, Clone)]
pub struct VertexMarks {
    /// Current epoch; starts at 1 so zero-initialized stamps are unmarked.
    epoch: u32,
    stamp: Vec<u32>,
}

impl Default for VertexMarks {
    fn default() -> Self {
        VertexMarks { epoch: 1, stamp: Vec::new() }
    }
}

impl VertexMarks {
    /// Creates an empty mark table (grows on demand).
    pub fn new() -> Self {
        VertexMarks::default()
    }

    /// Starts a fresh empty set: O(1) except on epoch wrap-around.
    #[inline]
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Inserts `v`; returns `true` when it was not in the set yet.
    #[inline]
    pub fn mark(&mut self, v: VertexId) -> bool {
        let i = v.index();
        if i >= self.stamp.len() {
            self.stamp.resize((i + 1).next_power_of_two(), 0);
        }
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    /// True when `v` is in the set.
    #[inline]
    pub fn is_marked(&self, v: VertexId) -> bool {
        self.stamp.get(v.index()).is_some_and(|&s| s == self.epoch)
    }
}

/// A dense epoch-stamped map from data vertex id to a `u32` value (the
/// reverse image-of table of an embedding row): `O(1)` set/get, `O(1)` reset.
#[derive(Debug, Default, Clone)]
pub struct VertexSlots {
    marks: VertexMarks,
    value: Vec<u32>,
}

impl VertexSlots {
    /// Creates an empty map (grows on demand).
    pub fn new() -> Self {
        VertexSlots::default()
    }

    /// Starts a fresh empty map.
    #[inline]
    pub fn reset(&mut self) {
        self.marks.reset();
    }

    /// Maps `v` to `value` (last write wins within an epoch).
    #[inline]
    pub fn set(&mut self, v: VertexId, value: u32) {
        self.marks.mark(v);
        let i = v.index();
        if i >= self.value.len() {
            self.value.resize(self.marks.stamp.len(), 0);
        }
        self.value[i] = value;
    }

    /// The value `v` maps to in the current epoch, if any.
    #[inline]
    pub fn get(&self, v: VertexId) -> Option<u32> {
        if self.marks.is_marked(v) {
            Some(self.value[v.index()])
        } else {
            None
        }
    }
}

/// Per-worker scratch for the occurrence joins: one epoch-mark table plus
/// reusable row/label buffers.  Everything is cleared by `O(1)` resets, so a
/// join body that rejects a row touches no allocator at all.
#[derive(Debug, Default)]
pub struct JoinScratch {
    /// Distinctness / membership marks over data vertex ids.
    pub marks: VertexMarks,
    /// Reusable combined-row buffer.
    pub row: Vec<VertexId>,
    /// Reusable vertex-label buffer of the combined row.
    pub vertex_labels: Vec<Label>,
    /// Reusable edge-label buffer of the combined row.
    pub edge_labels: Vec<Label>,
}

impl JoinScratch {
    /// Creates an empty scratch (buffers grow on first use, then stay).
    pub fn new() -> Self {
        JoinScratch::default()
    }
}

/// True when all vertices of `vs` are distinct — `O(|vs|)` probes against the
/// scratch mark table, no allocation, no sort.
pub fn all_distinct_marked(vs: &[VertexId], marks: &mut VertexMarks) -> bool {
    marks.reset();
    vs.iter().all(|&v| marks.mark(v))
}

/// True when directed rows `a` and `b` (with `a.last() == b.first()`) share
/// only the junction vertex — `O(|a| + |b|)` probes, no allocation.
pub fn disjoint_except_shared_marked(a: &[VertexId], b: &[VertexId], marks: &mut VertexMarks) -> bool {
    debug_assert_eq!(a.last(), b.first());
    marks.reset();
    for &v in a {
        marks.mark(v);
    }
    b[1..].iter().all(|&v| !marks.is_marked(v))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    fn store() -> OccurrenceStore {
        let mut s = OccurrenceStore::new(3);
        s.push_row(0, &v(&[0, 1, 2]));
        s.push_row(0, &v(&[0, 1, 3]));
        s.push_row(1, &v(&[0, 1, 2]));
        s.push_row(0, &v(&[2, 1, 0]));
        s.push_row(0, &v(&[0, 2, 4]));
        s
    }

    #[test]
    fn postings_group_by_prefix_in_row_order() {
        let s = store();
        let idx = OccurrenceIndex::by_prefix(&s, 2);
        assert_eq!(idx.prefix_len(), 2);
        assert_eq!(idx.group_count(), 4);
        assert_eq!(idx.postings(0, &v(&[0, 1])), &[0, 1]);
        assert_eq!(idx.postings(1, &v(&[0, 1])), &[2]);
        assert_eq!(idx.postings(0, &v(&[2, 1])), &[3]);
        assert_eq!(idx.postings(0, &v(&[0, 2])), &[4]);
        assert!(idx.postings(0, &v(&[9, 9])).is_empty());
        assert!(idx.postings(7, &v(&[0, 1])).is_empty());
    }

    #[test]
    fn head_index_is_a_length_one_prefix() {
        let s = store();
        let idx = OccurrenceIndex::by_prefix(&s, 1);
        assert_eq!(idx.postings(0, &v(&[0])), &[0, 1, 4]);
        assert_eq!(idx.postings(0, &v(&[2])), &[3]);
        // a lookup key borrowed from another row's suffix works
        let row = s.row(3);
        assert_eq!(idx.postings(0, &row[2..]), &[0, 1, 4]);
    }

    #[test]
    fn empty_store_indexes_fine() {
        let s = OccurrenceStore::new(4);
        let idx = OccurrenceIndex::by_prefix(&s, 2);
        assert_eq!(idx.group_count(), 0);
        assert!(idx.postings(0, &v(&[0, 1])).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_prefix_panics() {
        let s = store();
        let _ = OccurrenceIndex::by_prefix(&s, 4);
    }

    #[test]
    fn marks_reset_is_cheap_and_correct() {
        let mut m = VertexMarks::new();
        assert!(m.mark(VertexId(3)));
        assert!(!m.mark(VertexId(3)));
        assert!(m.is_marked(VertexId(3)));
        assert!(!m.is_marked(VertexId(4)));
        m.reset();
        assert!(!m.is_marked(VertexId(3)));
        assert!(m.mark(VertexId(3)));
    }

    #[test]
    fn marks_survive_epoch_wraparound() {
        let mut m = VertexMarks::new();
        m.mark(VertexId(1));
        m.epoch = u32::MAX - 1;
        // the stale stamp of vertex 1 must not leak into the next epochs
        m.reset();
        assert!(!m.is_marked(VertexId(1)));
        m.mark(VertexId(2));
        m.reset(); // wraps
        assert!(!m.is_marked(VertexId(1)));
        assert!(!m.is_marked(VertexId(2)));
        assert!(m.mark(VertexId(2)));
    }

    #[test]
    fn slots_map_and_reset() {
        let mut s = VertexSlots::new();
        s.set(VertexId(5), 2);
        s.set(VertexId(0), 7);
        assert_eq!(s.get(VertexId(5)), Some(2));
        assert_eq!(s.get(VertexId(0)), Some(7));
        assert_eq!(s.get(VertexId(1)), None);
        s.set(VertexId(5), 9);
        assert_eq!(s.get(VertexId(5)), Some(9));
        s.reset();
        assert_eq!(s.get(VertexId(5)), None);
    }

    #[test]
    fn distinctness_helpers() {
        let mut marks = VertexMarks::new();
        assert!(all_distinct_marked(&v(&[0, 1, 2]), &mut marks));
        assert!(!all_distinct_marked(&v(&[0, 1, 0]), &mut marks));
        assert!(disjoint_except_shared_marked(&v(&[0, 1, 2]), &v(&[2, 3, 4]), &mut marks));
        assert!(!disjoint_except_shared_marked(&v(&[0, 1, 2]), &v(&[2, 1, 5]), &mut marks));
    }
}
