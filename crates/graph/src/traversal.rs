//! Breadth-first traversal, connectivity and connected components.

use crate::graph::{LabeledGraph, VertexId};
use crate::view::GraphView;
use std::collections::VecDeque;

/// Distance value returned by BFS for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS: returns a vector of shortest hop distances from
/// `source` to every vertex ([`UNREACHABLE`] for disconnected vertices).
/// Generic over [`GraphView`], so it runs against the adjacency-list and CSR
/// representations alike.
pub fn bfs_distances<G: GraphView>(graph: &G, source: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.vertex_count()];
    if source.index() >= graph.vertex_count() {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for (n, _) in graph.neighbors(v) {
            if dist[n.index()] == UNREACHABLE {
                dist[n.index()] = dv + 1;
                queue.push_back(n);
            }
        }
    }
    dist
}

/// BFS restricted to a subset of vertices (given as a membership mask).
/// Distances are computed in the subgraph induced by `mask`.
pub fn bfs_distances_masked(graph: &LabeledGraph, source: VertexId, mask: &[bool]) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.vertex_count()];
    if source.index() >= graph.vertex_count() || !mask[source.index()] {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for n in graph.neighbor_ids(v) {
            if mask[n.index()] && dist[n.index()] == UNREACHABLE {
                dist[n.index()] = dv + 1;
                queue.push_back(n);
            }
        }
    }
    dist
}

/// Returns the shortest-path distance between `u` and `v`, or `None` if they
/// are disconnected.
pub fn distance(graph: &LabeledGraph, u: VertexId, v: VertexId) -> Option<u32> {
    let d = bfs_distances(graph, u);
    match d.get(v.index()) {
        Some(&x) if x != UNREACHABLE => Some(x),
        _ => None,
    }
}

/// True when the graph is connected (the empty graph counts as connected).
pub fn is_connected(graph: &LabeledGraph) -> bool {
    if graph.vertex_count() == 0 {
        return true;
    }
    let dist = bfs_distances(graph, VertexId(0));
    dist.iter().all(|&d| d != UNREACHABLE)
}

/// Returns the connected components as lists of vertex ids, each sorted, and
/// the list of components sorted by their smallest vertex.
pub fn connected_components(graph: &LabeledGraph) -> Vec<Vec<VertexId>> {
    let n = graph.vertex_count();
    let mut comp = vec![usize::MAX; n];
    let mut components: Vec<Vec<VertexId>> = Vec::new();
    for start in graph.vertices() {
        if comp[start.index()] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut queue = VecDeque::new();
        comp[start.index()] = id;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            members.push(v);
            for nb in graph.neighbor_ids(v) {
                if comp[nb.index()] == usize::MAX {
                    comp[nb.index()] = id;
                    queue.push_back(nb);
                }
            }
        }
        members.sort();
        components.push(members);
    }
    components
}

/// Returns the vertices of the largest connected component (ties broken by
/// smallest vertex id), or an empty vector for the empty graph.
pub fn largest_component(graph: &LabeledGraph) -> Vec<VertexId> {
    connected_components(graph)
        .into_iter()
        .max_by(|a, b| a.len().cmp(&b.len()).then_with(|| b[0].cmp(&a[0])))
        .unwrap_or_default()
}

/// Collects all vertices within hop distance `radius` of `center` (including
/// `center`), sorted by vertex id.  This is the "r-neighborhood" used by the
/// SpiderMine baseline's spiders.
pub fn ball(graph: &LabeledGraph, center: VertexId, radius: u32) -> Vec<VertexId> {
    let dist = bfs_distances(graph, center);
    let mut out: Vec<VertexId> =
        graph.vertices().filter(|v| dist[v.index()] != UNREACHABLE && dist[v.index()] <= radius).collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn path5() -> LabeledGraph {
        LabeledGraph::from_unlabeled_edges(&[Label(0); 5], [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap()
    }

    fn two_components() -> LabeledGraph {
        LabeledGraph::from_unlabeled_edges(&[Label(0); 6], [(0, 1), (1, 2), (3, 4)]).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path5();
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        let d = bfs_distances(&g, VertexId(2));
        assert_eq!(d, vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable_marked() {
        let g = two_components();
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(d[3], UNREACHABLE);
        assert_eq!(d[5], UNREACHABLE);
        assert_eq!(d[2], 2);
    }

    #[test]
    fn bfs_masked_restricts_to_subgraph() {
        let g = path5();
        // exclude vertex 2: 0 and 4 become disconnected
        let mask = vec![true, true, false, true, true];
        let d = bfs_distances_masked(&g, VertexId(0), &mask);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[4], UNREACHABLE);
        // source outside mask yields all unreachable
        let d = bfs_distances_masked(&g, VertexId(2), &mask);
        assert!(d.iter().all(|&x| x == UNREACHABLE));
    }

    #[test]
    fn pairwise_distance() {
        let g = path5();
        assert_eq!(distance(&g, VertexId(0), VertexId(4)), Some(4));
        assert_eq!(distance(&g, VertexId(3), VertexId(3)), Some(0));
        let h = two_components();
        assert_eq!(distance(&h, VertexId(0), VertexId(4)), None);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&path5()));
        assert!(!is_connected(&two_components()));
        assert!(is_connected(&LabeledGraph::new()));
    }

    #[test]
    fn components_found() {
        let g = two_components();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(comps[1], vec![VertexId(3), VertexId(4)]);
        assert_eq!(comps[2], vec![VertexId(5)]);
        assert_eq!(largest_component(&g).len(), 3);
    }

    #[test]
    fn largest_component_of_empty_graph() {
        assert!(largest_component(&LabeledGraph::new()).is_empty());
    }

    #[test]
    fn ball_radius() {
        let g = path5();
        assert_eq!(ball(&g, VertexId(2), 1), vec![VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(ball(&g, VertexId(0), 0), vec![VertexId(0)]);
        assert_eq!(ball(&g, VertexId(0), 10).len(), 5);
    }
}
