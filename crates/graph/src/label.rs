//! Vertex / edge labels and label interning.
//!
//! The paper works with labeled graphs `G = (V, E)` together with a label
//! function `l_G : V(G) -> Σ` over a label alphabet `Σ` that carries a total
//! lexicographic order.  We represent labels as interned `u32` values whose
//! numeric order *is* the lexicographic order of the alphabet (the
//! [`LabelTable`] interns strings in a way that preserves this property for
//! the common case of sequentially registered alphabets, and exposes
//! [`LabelTable::intern_sorted`] to build order-preserving tables from an
//! arbitrary set of strings).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An interned label. Ordering of `Label` values defines the lexicographic
/// order `⊑` over the alphabet used by Definition 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Label(pub u32);

impl Label {
    /// The default edge label used for graphs whose edges are unlabeled.
    pub const DEFAULT_EDGE: Label = Label(0);

    /// Returns the raw interned id.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

impl From<u32> for Label {
    fn from(v: u32) -> Self {
        Label(v)
    }
}

/// A bidirectional map between human-readable label strings and interned
/// [`Label`] ids.
///
/// Interned ids are assigned in registration order by [`LabelTable::intern`],
/// or in sorted (lexicographic) order by [`LabelTable::intern_sorted`] /
/// [`LabelTable::from_sorted_alphabet`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelTable {
    names: Vec<String>,
    index: BTreeMap<String, Label>,
}

impl LabelTable {
    /// Creates an empty label table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table whose interned ids follow the lexicographic order of
    /// the given alphabet. Duplicates are collapsed.
    pub fn from_sorted_alphabet<I, S>(alphabet: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names: Vec<String> = alphabet.into_iter().map(Into::into).collect();
        names.sort();
        names.dedup();
        let mut table = LabelTable::new();
        for name in names {
            table.intern(&name);
        }
        table
    }

    /// Interns `name`, returning its label. If the label already exists, the
    /// existing id is returned.
    pub fn intern(&mut self, name: &str) -> Label {
        if let Some(&l) = self.index.get(name) {
            return l;
        }
        let label = Label(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), label);
        label
    }

    /// Interns every string of an alphabet after sorting it, so that the
    /// resulting numeric label order matches string lexicographic order.
    /// Strings already present keep their existing ids.
    pub fn intern_sorted<I, S>(&mut self, alphabet: I) -> Vec<Label>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names: Vec<String> = alphabet.into_iter().map(Into::into).collect();
        names.sort();
        names.dedup();
        names.iter().map(|n| self.intern(n)).collect()
    }

    /// Looks up the label for `name` without interning.
    pub fn get(&self, name: &str) -> Option<Label> {
        self.index.get(name).copied()
    }

    /// Returns the string for a label, if it was interned through this table.
    pub fn name(&self, label: Label) -> Option<&str> {
        self.names.get(label.0 as usize).map(String::as_str)
    }

    /// Returns the string for a label, or a synthetic `"L<id>"` placeholder.
    pub fn name_or_placeholder(&self, label: Label) -> String {
        self.name(label).map(str::to_string).unwrap_or_else(|| format!("{label}"))
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no label has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Label, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (Label(i as u32), n.as_str()))
    }
}

/// Compares two label sequences lexicographically, **shorter sequences first**
/// as required by Definition 2 of the paper (condition (I): `k1 < k2` implies
/// `L1 ⊑_L L2`).
pub fn compare_label_seq(a: &[Label], b: &[Label]) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match a.len().cmp(&b.len()) {
        Ordering::Equal => a.cmp(b),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn intern_assigns_sequential_ids() {
        let mut t = LabelTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        let a2 = t.intern("a");
        assert_eq!(a, Label(0));
        assert_eq!(b, Label(1));
        assert_eq!(a, a2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn from_sorted_alphabet_orders_ids_lexicographically() {
        let t = LabelTable::from_sorted_alphabet(["c", "a", "b", "a"]);
        assert_eq!(t.get("a"), Some(Label(0)));
        assert_eq!(t.get("b"), Some(Label(1)));
        assert_eq!(t.get("c"), Some(Label(2)));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn name_roundtrip() {
        let mut t = LabelTable::new();
        let x = t.intern("station");
        assert_eq!(t.name(x), Some("station"));
        assert_eq!(t.name(Label(99)), None);
        assert_eq!(t.name_or_placeholder(Label(99)), "L99");
    }

    #[test]
    fn intern_sorted_preserves_existing() {
        let mut t = LabelTable::new();
        let z = t.intern("z");
        let labels = t.intern_sorted(["b", "a"]);
        assert_eq!(z, Label(0));
        assert_eq!(labels, vec![Label(1), Label(2)]);
        assert_eq!(t.get("a"), Some(Label(1)));
        assert_eq!(t.get("b"), Some(Label(2)));
    }

    #[test]
    fn compare_label_seq_shorter_first() {
        let a = vec![Label(5)];
        let b = vec![Label(0), Label(0)];
        assert_eq!(compare_label_seq(&a, &b), Ordering::Less);
        assert_eq!(compare_label_seq(&b, &a), Ordering::Greater);
    }

    #[test]
    fn compare_label_seq_same_length_lexicographic() {
        let a = vec![Label(0), Label(2)];
        let b = vec![Label(0), Label(3)];
        let c = vec![Label(0), Label(2)];
        assert_eq!(compare_label_seq(&a, &b), Ordering::Less);
        assert_eq!(compare_label_seq(&a, &c), Ordering::Equal);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let t = LabelTable::from_sorted_alphabet(["b", "a"]);
        let pairs: Vec<_> = t.iter().map(|(l, n)| (l.id(), n.to_string())).collect();
        assert_eq!(pairs, vec![(0, "a".to_string()), (1, "b".to_string())]);
    }

    #[test]
    fn label_display() {
        assert_eq!(Label(3).to_string(), "L3");
    }
}
