//! Graph-transaction databases.
//!
//! The paper's problem is defined in the single-graph setting, but §6.2
//! ("Graph-Transaction Setting", Figures 9–10) also evaluates against
//! ORIGAMI and SpiderMine on a database of graphs.  [`GraphDatabase`] is a
//! collection of labeled graphs with transaction-level support counting.

use crate::embedding::EmbeddingSet;
use crate::error::{GraphError, GraphResult};
use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use crate::subiso::{find_embeddings, has_embedding, SubIsoOptions};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A database of graph transactions.
///
/// The database is mutable per transaction: the `*_in` methods edit one
/// transaction's graph in place and record its index in a **dirty set**,
/// which the incremental mining path drains to re-freeze and re-mine only
/// what changed.  Transaction indices are stable for the lifetime of the
/// database — [`GraphDatabase::remove_transaction`] tombstones a slot to an
/// empty graph instead of shifting later indices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphDatabase {
    graphs: Vec<LabeledGraph>,
    /// Indices of transactions mutated since the last [`take_dirty`]
    /// (ordered, so delta passes walk them deterministically).  Transient
    /// bookkeeping: a deserialized database starts clean.
    ///
    /// [`take_dirty`]: GraphDatabase::take_dirty
    #[serde(skip)]
    dirty: BTreeSet<usize>,
}

impl GraphDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a database from a vector of graphs.
    pub fn from_graphs(graphs: Vec<LabeledGraph>) -> Self {
        GraphDatabase { graphs, dirty: BTreeSet::new() }
    }

    /// Adds a transaction and returns its index.
    ///
    /// This is the *construction* path: it does **not** mark the slot dirty.
    /// Use [`GraphDatabase::add_transaction`] when appending to a database
    /// that an incremental miner is maintaining.
    pub fn push(&mut self, g: LabeledGraph) -> usize {
        self.graphs.push(g);
        self.graphs.len() - 1
    }

    // -- update API ---------------------------------------------------------

    /// Appends a transaction as an update: the new slot is marked dirty so
    /// the incremental path freezes and seeds it on the next refresh.
    pub fn add_transaction(&mut self, g: LabeledGraph) -> usize {
        let t = self.push(g);
        self.dirty.insert(t);
        t
    }

    /// Removes transaction `t` by tombstoning it to an empty graph.
    ///
    /// Indices of the remaining transactions are unchanged (the occurrence
    /// stores and snapshots indexed by transaction stay valid); an empty
    /// graph contributes no vertices, edges or embeddings anywhere.
    pub fn remove_transaction(&mut self, t: usize) -> GraphResult<LabeledGraph> {
        self.check_transaction(t)?;
        let old = std::mem::take(&mut self.graphs[t]);
        self.dirty.insert(t);
        Ok(old)
    }

    /// Replaces transaction `t` wholesale and marks it dirty.
    pub fn replace_transaction(&mut self, t: usize, g: LabeledGraph) -> GraphResult<LabeledGraph> {
        self.check_transaction(t)?;
        let old = std::mem::replace(&mut self.graphs[t], g);
        self.dirty.insert(t);
        Ok(old)
    }

    /// Adds a vertex to transaction `t` and marks it dirty.
    pub fn add_vertex_in(&mut self, t: usize, label: Label) -> GraphResult<VertexId> {
        self.check_transaction(t)?;
        let v = self.graphs[t].add_vertex(label);
        self.dirty.insert(t);
        Ok(v)
    }

    /// Removes every edge incident to `v` in transaction `t` (the vertex
    /// stays as an isolated tombstone, so ids remain dense and stable) and
    /// marks the transaction dirty.  Returns the number of removed edges.
    pub fn remove_vertex_in(&mut self, t: usize, v: VertexId) -> GraphResult<usize> {
        self.check_transaction(t)?;
        let removed = self.graphs[t].isolate_vertex(v)?;
        self.dirty.insert(t);
        Ok(removed)
    }

    /// Adds edge `(u, v)` with `label` to transaction `t` and marks it dirty.
    pub fn add_edge_in(&mut self, t: usize, u: VertexId, v: VertexId, label: Label) -> GraphResult<()> {
        self.check_transaction(t)?;
        self.graphs[t].add_edge(u, v, label)?;
        self.dirty.insert(t);
        Ok(())
    }

    /// Removes edge `(u, v)` from transaction `t` and marks it dirty.
    /// Returns the removed edge's label.
    pub fn remove_edge_in(&mut self, t: usize, u: VertexId, v: VertexId) -> GraphResult<Label> {
        self.check_transaction(t)?;
        let label = self.graphs[t].remove_edge(u, v)?;
        self.dirty.insert(t);
        Ok(label)
    }

    /// Mutable access to transaction `t`'s graph; the transaction is marked
    /// dirty unconditionally (the caller is assumed to mutate it).
    pub fn transaction_mut(&mut self, t: usize) -> GraphResult<&mut LabeledGraph> {
        self.check_transaction(t)?;
        self.dirty.insert(t);
        Ok(&mut self.graphs[t])
    }

    /// The transactions mutated since the last [`GraphDatabase::take_dirty`],
    /// in ascending order.
    pub fn dirty_transactions(&self) -> &BTreeSet<usize> {
        &self.dirty
    }

    /// True when no transaction has been mutated since the last drain.
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Drains and returns the dirty set, leaving the database clean.
    pub fn take_dirty(&mut self) -> BTreeSet<usize> {
        std::mem::take(&mut self.dirty)
    }

    /// Clears the dirty set without returning it (e.g. after a full re-mine
    /// that observed every transaction anyway).
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    fn check_transaction(&self, t: usize) -> GraphResult<()> {
        if t < self.graphs.len() {
            Ok(())
        } else {
            Err(GraphError::TransactionOutOfBounds { index: t, len: self.graphs.len() })
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the database holds no transaction.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Returns transaction `i`.
    pub fn get(&self, i: usize) -> GraphResult<&LabeledGraph> {
        self.graphs.get(i).ok_or(GraphError::TransactionOutOfBounds { index: i, len: self.graphs.len() })
    }

    /// Iterates over `(index, graph)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &LabeledGraph)> {
        self.graphs.iter().enumerate()
    }

    /// Total number of vertices across all transactions.
    pub fn total_vertices(&self) -> usize {
        self.graphs.iter().map(LabeledGraph::vertex_count).sum()
    }

    /// Total number of edges across all transactions.
    pub fn total_edges(&self) -> usize {
        self.graphs.iter().map(LabeledGraph::edge_count).sum()
    }

    /// All distinct vertex labels present in the database, sorted.
    pub fn distinct_vertex_labels(&self) -> Vec<Label> {
        let mut labels: Vec<Label> = self.graphs.iter().flat_map(|g| g.labels().iter().copied()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Transaction support of `pattern`: the number of transactions that
    /// contain at least one embedding.
    pub fn transaction_support(&self, pattern: &LabeledGraph) -> usize {
        self.graphs.iter().filter(|g| has_embedding(pattern, g)).count()
    }

    /// Collects all embeddings of `pattern` across all transactions, with the
    /// transaction index recorded on each embedding.
    pub fn find_all_embeddings(
        &self,
        pattern: &LabeledGraph,
        per_transaction_limit: Option<usize>,
    ) -> EmbeddingSet {
        let mut out = EmbeddingSet::new();
        for (i, g) in self.iter() {
            let em =
                find_embeddings(pattern, g, SubIsoOptions { limit: per_transaction_limit, transaction: i });
            for e in em.embeddings {
                out.push(e);
            }
        }
        out
    }

    /// True when `pattern` is frequent at transaction support `sigma`.
    pub fn is_frequent(&self, pattern: &LabeledGraph, sigma: usize) -> bool {
        if sigma == 0 {
            return true;
        }
        let mut count = 0;
        for g in &self.graphs {
            if has_embedding(pattern, g) {
                count += 1;
                if count >= sigma {
                    return true;
                }
            }
        }
        false
    }
}

impl FromIterator<LabeledGraph> for GraphDatabase {
    fn from_iter<T: IntoIterator<Item = LabeledGraph>>(iter: T) -> Self {
        GraphDatabase::from_graphs(iter.into_iter().collect())
    }
}

impl std::ops::Index<usize> for GraphDatabase {
    type Output = LabeledGraph;
    fn index(&self, i: usize) -> &LabeledGraph {
        &self.graphs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LabeledGraph;

    fn edge_graph(a: u32, b: u32) -> LabeledGraph {
        LabeledGraph::from_unlabeled_edges(&[Label(a), Label(b)], [(0, 1)]).unwrap()
    }

    fn db() -> GraphDatabase {
        // t0: a-b, t1: a-b-a path, t2: c-c
        let t0 = edge_graph(0, 1);
        let t1 =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(0)], [(0, 1), (1, 2)]).unwrap();
        let t2 = edge_graph(2, 2);
        GraphDatabase::from_graphs(vec![t0, t1, t2])
    }

    #[test]
    fn basic_accessors() {
        let d = db();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.total_vertices(), 7);
        assert_eq!(d.total_edges(), 4);
        assert!(d.get(0).is_ok());
        assert!(d.get(9).is_err());
        assert_eq!(d[1].vertex_count(), 3);
        assert_eq!(d.distinct_vertex_labels(), vec![Label(0), Label(1), Label(2)]);
    }

    #[test]
    fn transaction_support_counts_transactions_not_embeddings() {
        let d = db();
        let ab = edge_graph(0, 1);
        // t0 has 1 embedding, t1 has 2, t2 has none -> support 2
        assert_eq!(d.transaction_support(&ab), 2);
        assert!(d.is_frequent(&ab, 2));
        assert!(!d.is_frequent(&ab, 3));
        assert!(d.is_frequent(&ab, 0));
    }

    #[test]
    fn find_all_embeddings_records_transactions() {
        let d = db();
        let ab = edge_graph(0, 1);
        let em = d.find_all_embeddings(&ab, None);
        assert_eq!(em.transaction_support(), 2);
        let transactions: Vec<usize> = em.iter().map(|e| e.transaction).collect();
        assert!(transactions.contains(&0));
        assert!(transactions.contains(&1));
        assert!(!transactions.contains(&2));
    }

    #[test]
    fn per_transaction_limit_applies() {
        let d = db();
        let ab = edge_graph(0, 1);
        let em = d.find_all_embeddings(&ab, Some(1));
        // one embedding per matching transaction at most
        assert_eq!(em.len(), 2);
    }

    #[test]
    fn from_iterator_and_push() {
        let mut d: GraphDatabase = vec![edge_graph(0, 0)].into_iter().collect();
        assert_eq!(d.len(), 1);
        let idx = d.push(edge_graph(1, 1));
        assert_eq!(idx, 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn update_api_tracks_dirty_transactions() {
        let mut d = db();
        assert!(d.is_clean(), "construction leaves the database clean");

        d.add_edge_in(1, crate::VertexId(0), crate::VertexId(2), Label(5)).unwrap();
        assert_eq!(d.dirty_transactions().iter().copied().collect::<Vec<_>>(), vec![1]);
        assert_eq!(d[1].edge_count(), 3);

        assert_eq!(d.remove_edge_in(1, crate::VertexId(0), crate::VertexId(2)).unwrap(), Label(5));
        let v = d.add_vertex_in(0, Label(9)).unwrap();
        assert_eq!(d[0].label(v), Label(9));
        d.add_edge_in(0, crate::VertexId(0), v, Label::DEFAULT_EDGE).unwrap();
        assert_eq!(d.remove_vertex_in(0, v).unwrap(), 1);
        assert_eq!(d.dirty_transactions().iter().copied().collect::<Vec<_>>(), vec![0, 1]);

        let drained = d.take_dirty();
        assert_eq!(drained.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(d.is_clean());

        // errors do not mark anything dirty
        assert!(d.add_edge_in(9, crate::VertexId(0), crate::VertexId(1), Label(0)).is_err());
        assert!(d.remove_edge_in(0, crate::VertexId(0), crate::VertexId(0)).is_err());
        assert!(d.is_clean());

        // transaction add/remove: stable indices, tombstone semantics
        let t = d.add_transaction(edge_graph(7, 7));
        assert_eq!(t, 3);
        let old = d.remove_transaction(1).unwrap();
        assert_eq!(old.vertex_count(), 3);
        assert_eq!(d.len(), 4, "removal tombstones, never shifts");
        assert!(d[1].is_empty());
        assert_eq!(d.dirty_transactions().iter().copied().collect::<Vec<_>>(), vec![1, 3]);
        d.clear_dirty();
        assert!(d.is_clean());

        // transaction_mut marks dirty unconditionally
        d.transaction_mut(2).unwrap().add_vertex(Label(4));
        assert_eq!(d.dirty_transactions().iter().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn empty_database() {
        let d = GraphDatabase::new();
        assert!(d.is_empty());
        assert_eq!(d.transaction_support(&edge_graph(0, 1)), 0);
        assert!(d.distinct_vertex_labels().is_empty());
    }
}
