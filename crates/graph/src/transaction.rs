//! Graph-transaction databases.
//!
//! The paper's problem is defined in the single-graph setting, but §6.2
//! ("Graph-Transaction Setting", Figures 9–10) also evaluates against
//! ORIGAMI and SpiderMine on a database of graphs.  [`GraphDatabase`] is a
//! collection of labeled graphs with transaction-level support counting.

use crate::embedding::EmbeddingSet;
use crate::error::{GraphError, GraphResult};
use crate::graph::LabeledGraph;
use crate::label::Label;
use crate::subiso::{find_embeddings, has_embedding, SubIsoOptions};
use serde::{Deserialize, Serialize};

/// A database of graph transactions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GraphDatabase {
    graphs: Vec<LabeledGraph>,
}

impl GraphDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a database from a vector of graphs.
    pub fn from_graphs(graphs: Vec<LabeledGraph>) -> Self {
        GraphDatabase { graphs }
    }

    /// Adds a transaction and returns its index.
    pub fn push(&mut self, g: LabeledGraph) -> usize {
        self.graphs.push(g);
        self.graphs.len() - 1
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the database holds no transaction.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// Returns transaction `i`.
    pub fn get(&self, i: usize) -> GraphResult<&LabeledGraph> {
        self.graphs.get(i).ok_or(GraphError::TransactionOutOfBounds { index: i, len: self.graphs.len() })
    }

    /// Iterates over `(index, graph)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &LabeledGraph)> {
        self.graphs.iter().enumerate()
    }

    /// Total number of vertices across all transactions.
    pub fn total_vertices(&self) -> usize {
        self.graphs.iter().map(LabeledGraph::vertex_count).sum()
    }

    /// Total number of edges across all transactions.
    pub fn total_edges(&self) -> usize {
        self.graphs.iter().map(LabeledGraph::edge_count).sum()
    }

    /// All distinct vertex labels present in the database, sorted.
    pub fn distinct_vertex_labels(&self) -> Vec<Label> {
        let mut labels: Vec<Label> = self.graphs.iter().flat_map(|g| g.labels().iter().copied()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Transaction support of `pattern`: the number of transactions that
    /// contain at least one embedding.
    pub fn transaction_support(&self, pattern: &LabeledGraph) -> usize {
        self.graphs.iter().filter(|g| has_embedding(pattern, g)).count()
    }

    /// Collects all embeddings of `pattern` across all transactions, with the
    /// transaction index recorded on each embedding.
    pub fn find_all_embeddings(
        &self,
        pattern: &LabeledGraph,
        per_transaction_limit: Option<usize>,
    ) -> EmbeddingSet {
        let mut out = EmbeddingSet::new();
        for (i, g) in self.iter() {
            let em =
                find_embeddings(pattern, g, SubIsoOptions { limit: per_transaction_limit, transaction: i });
            for e in em.embeddings {
                out.push(e);
            }
        }
        out
    }

    /// True when `pattern` is frequent at transaction support `sigma`.
    pub fn is_frequent(&self, pattern: &LabeledGraph, sigma: usize) -> bool {
        if sigma == 0 {
            return true;
        }
        let mut count = 0;
        for g in &self.graphs {
            if has_embedding(pattern, g) {
                count += 1;
                if count >= sigma {
                    return true;
                }
            }
        }
        false
    }
}

impl FromIterator<LabeledGraph> for GraphDatabase {
    fn from_iter<T: IntoIterator<Item = LabeledGraph>>(iter: T) -> Self {
        GraphDatabase { graphs: iter.into_iter().collect() }
    }
}

impl std::ops::Index<usize> for GraphDatabase {
    type Output = LabeledGraph;
    fn index(&self, i: usize) -> &LabeledGraph {
        &self.graphs[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LabeledGraph;

    fn edge_graph(a: u32, b: u32) -> LabeledGraph {
        LabeledGraph::from_unlabeled_edges(&[Label(a), Label(b)], [(0, 1)]).unwrap()
    }

    fn db() -> GraphDatabase {
        // t0: a-b, t1: a-b-a path, t2: c-c
        let t0 = edge_graph(0, 1);
        let t1 =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(0)], [(0, 1), (1, 2)]).unwrap();
        let t2 = edge_graph(2, 2);
        GraphDatabase::from_graphs(vec![t0, t1, t2])
    }

    #[test]
    fn basic_accessors() {
        let d = db();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.total_vertices(), 7);
        assert_eq!(d.total_edges(), 4);
        assert!(d.get(0).is_ok());
        assert!(d.get(9).is_err());
        assert_eq!(d[1].vertex_count(), 3);
        assert_eq!(d.distinct_vertex_labels(), vec![Label(0), Label(1), Label(2)]);
    }

    #[test]
    fn transaction_support_counts_transactions_not_embeddings() {
        let d = db();
        let ab = edge_graph(0, 1);
        // t0 has 1 embedding, t1 has 2, t2 has none -> support 2
        assert_eq!(d.transaction_support(&ab), 2);
        assert!(d.is_frequent(&ab, 2));
        assert!(!d.is_frequent(&ab, 3));
        assert!(d.is_frequent(&ab, 0));
    }

    #[test]
    fn find_all_embeddings_records_transactions() {
        let d = db();
        let ab = edge_graph(0, 1);
        let em = d.find_all_embeddings(&ab, None);
        assert_eq!(em.transaction_support(), 2);
        let transactions: Vec<usize> = em.iter().map(|e| e.transaction).collect();
        assert!(transactions.contains(&0));
        assert!(transactions.contains(&1));
        assert!(!transactions.contains(&2));
    }

    #[test]
    fn per_transaction_limit_applies() {
        let d = db();
        let ab = edge_graph(0, 1);
        let em = d.find_all_embeddings(&ab, Some(1));
        // one embedding per matching transaction at most
        assert_eq!(em.len(), 2);
    }

    #[test]
    fn from_iterator_and_push() {
        let mut d: GraphDatabase = vec![edge_graph(0, 0)].into_iter().collect();
        assert_eq!(d.len(), 1);
        let idx = d.push(edge_graph(1, 1));
        assert_eq!(idx, 1);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn empty_database() {
        let d = GraphDatabase::new();
        assert!(d.is_empty());
        assert_eq!(d.transaction_support(&edge_graph(0, 1)), 0);
        assert!(d.distinct_vertex_labels().is_empty());
    }
}
