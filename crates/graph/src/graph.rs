//! The core undirected labeled graph type.
//!
//! Graphs in the paper are undirected, vertex-labeled (optionally
//! edge-labeled) simple graphs.  [`LabeledGraph`] stores vertex labels and a
//! sorted adjacency list per vertex; it is used both for the (potentially
//! large) data graph and for (small) patterns.

use crate::error::{GraphError, GraphResult};
use crate::label::Label;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A vertex identifier: an index into the graph's vertex array.
///
/// The paper calls these "physical vertex IDs"; they participate in the total
/// path order of Definition 3 as the tie breaker among lexicographically
/// equal paths.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VertexId(pub u32);

impl VertexId {
    /// Returns the vertex id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    fn from(v: usize) -> Self {
        VertexId(v as u32)
    }
}

/// An undirected edge together with its label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Smaller endpoint (edges are normalized so that `u <= v`).
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
    /// Edge label ([`Label::DEFAULT_EDGE`] for unlabeled graphs).
    pub label: Label,
}

impl Edge {
    /// Creates a normalized edge with endpoints ordered `u <= v`.
    pub fn new(a: VertexId, b: VertexId, label: Label) -> Self {
        if a <= b {
            Edge { u: a, v: b, label }
        } else {
            Edge { u: b, v: a, label }
        }
    }

    /// Returns the endpoint different from `x`, or `None` if `x` is not an
    /// endpoint.
    pub fn other(&self, x: VertexId) -> Option<VertexId> {
        if x == self.u {
            Some(self.v)
        } else if x == self.v {
            Some(self.u)
        } else {
            None
        }
    }
}

/// An undirected, vertex-labeled, optionally edge-labeled simple graph.
///
/// Multi-edges and self loops are rejected.  Adjacency lists are kept sorted
/// by `(neighbor id)` so iteration order is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledGraph {
    labels: Vec<Label>,
    adj: Vec<Vec<(VertexId, Label)>>,
    edge_count: usize,
    name: Option<String>,
}

impl LabeledGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity reserved for `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        LabeledGraph { labels: Vec::with_capacity(n), adj: Vec::with_capacity(n), edge_count: 0, name: None }
    }

    /// Builds a graph from a vertex label slice and an edge list in one call.
    ///
    /// Edges are `(u, v, edge_label)` triples over indices into `labels`.
    pub fn from_parts<E>(labels: &[Label], edges: E) -> GraphResult<Self>
    where
        E: IntoIterator<Item = (u32, u32, Label)>,
    {
        let mut g = LabeledGraph::with_capacity(labels.len());
        for &l in labels {
            g.add_vertex(l);
        }
        for (u, v, el) in edges {
            g.add_edge(VertexId(u), VertexId(v), el)?;
        }
        Ok(g)
    }

    /// Builds an unlabeled-edge graph from vertex labels and `(u, v)` pairs.
    pub fn from_unlabeled_edges<E>(labels: &[Label], edges: E) -> GraphResult<Self>
    where
        E: IntoIterator<Item = (u32, u32)>,
    {
        Self::from_parts(labels, edges.into_iter().map(|(u, v)| (u, v, Label::DEFAULT_EDGE)))
    }

    /// Makes `self` a copy of `other`, reusing every buffer this graph
    /// already owns (including the per-vertex adjacency vectors).  The
    /// grow engines rebuild candidate pattern graphs into per-worker
    /// scratch with this, so a rejected candidate never allocates.
    pub fn clone_from_graph(&mut self, other: &LabeledGraph) {
        self.labels.clone_from(&other.labels);
        self.adj.clone_from(&other.adj);
        self.edge_count = other.edge_count;
        self.name.clone_from(&other.name);
    }

    /// Sets a human readable name (graph id) used in diagnostics.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = Some(name.into());
    }

    /// Returns the graph name, if set.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// Adds a vertex with label `label` and returns its id.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId(self.labels.len() as u32);
        self.labels.push(label);
        self.adj.push(Vec::new());
        id
    }

    /// Adds an undirected edge with the default edge label.
    pub fn add_unlabeled_edge(&mut self, u: VertexId, v: VertexId) -> GraphResult<()> {
        self.add_edge(u, v, Label::DEFAULT_EDGE)
    }

    /// Adds an undirected edge `(u, v)` with label `label`.
    ///
    /// Returns an error on out-of-bounds endpoints, self loops and duplicate
    /// edges.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, label: Label) -> GraphResult<()> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u.0 });
        }
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge { u: u.0, v: v.0 });
        }
        self.insert_sorted(u, v, label);
        self.insert_sorted(v, u, label);
        self.edge_count += 1;
        Ok(())
    }

    fn insert_sorted(&mut self, from: VertexId, to: VertexId, label: Label) {
        let list = &mut self.adj[from.index()];
        let pos = list.partition_point(|&(n, _)| n < to);
        list.insert(pos, (to, label));
    }

    /// Removes the undirected edge `(u, v)`, returning its label.
    ///
    /// Returns an error on out-of-bounds endpoints or when the edge does not
    /// exist.  Vertex ids are stable across removals.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> GraphResult<Label> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        let Ok(pos_u) = self.adj[u.index()].binary_search_by_key(&v, |&(n, _)| n) else {
            return Err(GraphError::EdgeNotFound { u: u.0, v: v.0 });
        };
        let (_, label) = self.adj[u.index()].remove(pos_u);
        let pos_v = self.adj[v.index()]
            .binary_search_by_key(&u, |&(n, _)| n)
            .expect("undirected adjacency lists are symmetric");
        self.adj[v.index()].remove(pos_v);
        self.edge_count -= 1;
        Ok(label)
    }

    /// Removes every edge incident to `v`, leaving it an isolated vertex.
    ///
    /// This is the update path's "vertex delete": vertex ids stay dense and
    /// stable (the label remains), only the incident edges disappear.
    /// Returns the number of removed edges.
    pub fn isolate_vertex(&mut self, v: VertexId) -> GraphResult<usize> {
        self.check_vertex(v)?;
        let incident = std::mem::take(&mut self.adj[v.index()]);
        for &(w, _) in &incident {
            let pos = self.adj[w.index()]
                .binary_search_by_key(&v, |&(n, _)| n)
                .expect("undirected adjacency lists are symmetric");
            self.adj[w.index()].remove(pos);
        }
        self.edge_count -= incident.len();
        Ok(incident.len())
    }

    fn check_vertex(&self, v: VertexId) -> GraphResult<()> {
        if v.index() < self.labels.len() {
            Ok(())
        } else {
            Err(GraphError::VertexOutOfBounds { vertex: v.0, len: self.labels.len() })
        }
    }

    /// Number of vertices `|V(G)|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of edges `|E(G)|`. Following the paper's convention, this is
    /// also the graph "size" `|G|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// True when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Returns the vertex label of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of bounds (all ids handed out by this graph are
    /// valid; only externally forged ids can panic).
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v.index()]
    }

    /// Returns the vertex label of `v` or `None` if out of bounds.
    pub fn label_checked(&self, v: VertexId) -> Option<Label> {
        self.labels.get(v.index()).copied()
    }

    /// Returns the slice of all vertex labels, indexed by vertex id.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.adj[v.index()].len()
    }

    /// Maximum degree over all vertices, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree `2|E| / |V|`, or 0.0 for the empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count as f64 / self.labels.len() as f64
        }
    }

    /// Iterates over `(neighbor, edge_label)` pairs of `v` in ascending
    /// neighbor-id order.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Label)> + '_ {
        self.adj[v.index()].iter().copied()
    }

    /// The sorted `(neighbor, edge_label)` slice of `v` — the borrow the
    /// [`GraphView`](crate::view::GraphView) implementation hands out.
    #[inline]
    pub fn neighbor_slice(&self, v: VertexId) -> &[(VertexId, Label)] {
        &self.adj[v.index()]
    }

    /// Iterates over neighbor ids of `v` (without edge labels).
    #[inline]
    pub fn neighbor_ids(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.adj[v.index()].iter().map(|&(n, _)| n)
    }

    /// True if the edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u.index() >= self.adj.len() || v.index() >= self.adj.len() {
            return false;
        }
        self.adj[u.index()].binary_search_by_key(&v, |&(n, _)| n).is_ok()
    }

    /// Returns the label of edge `(u, v)` if it exists.
    pub fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label> {
        if u.index() >= self.adj.len() {
            return None;
        }
        self.adj[u.index()].binary_search_by_key(&v, |&(n, _)| n).ok().map(|i| self.adj[u.index()][i].1)
    }

    /// Iterates over all vertex ids `0..|V|`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.labels.len() as u32).map(VertexId)
    }

    /// Iterates over all edges, each reported once with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).filter(move |&(v, _)| u < v).map(move |(v, label)| Edge { u, v, label })
        })
    }

    /// Returns all vertices carrying label `l`.
    pub fn vertices_with_label(&self, l: Label) -> Vec<VertexId> {
        self.vertices().filter(|&v| self.label(v) == l).collect()
    }

    /// Returns the set of distinct vertex labels present, sorted.
    pub fn distinct_vertex_labels(&self) -> Vec<Label> {
        let mut ls = self.labels.clone();
        ls.sort();
        ls.dedup();
        ls
    }

    /// Builds the induced subgraph on `vertices`, returning the subgraph and
    /// the mapping from new vertex ids to the original ids (`new -> old`).
    pub fn induced_subgraph(&self, vertices: &[VertexId]) -> (LabeledGraph, Vec<VertexId>) {
        let mut sub = LabeledGraph::with_capacity(vertices.len());
        let mut old_of_new = Vec::with_capacity(vertices.len());
        let mut new_of_old = vec![None; self.vertex_count()];
        for &v in vertices {
            let nv = sub.add_vertex(self.label(v));
            new_of_old[v.index()] = Some(nv);
            old_of_new.push(v);
        }
        for &v in vertices {
            let nv = new_of_old[v.index()].expect("just inserted");
            for (w, el) in self.neighbors(v) {
                if let Some(nw) = new_of_old.get(w.index()).copied().flatten() {
                    if nv < nw {
                        sub.add_edge(nv, nw, el).expect("induced subgraph edge must be valid");
                    }
                }
            }
        }
        (sub, old_of_new)
    }

    /// Builds the subgraph consisting of exactly the given edges (and their
    /// endpoints). Returns the subgraph and the `new -> old` vertex map.
    pub fn edge_subgraph(&self, edges: &[Edge]) -> (LabeledGraph, Vec<VertexId>) {
        let mut verts: Vec<VertexId> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
        verts.sort();
        verts.dedup();
        let mut sub = LabeledGraph::with_capacity(verts.len());
        let mut new_of_old = vec![None; self.vertex_count()];
        for &v in &verts {
            let nv = sub.add_vertex(self.label(v));
            new_of_old[v.index()] = Some(nv);
        }
        for e in edges {
            let nu = new_of_old[e.u.index()].expect("endpoint inserted");
            let nv = new_of_old[e.v.index()].expect("endpoint inserted");
            if !sub.has_edge(nu, nv) {
                sub.add_edge(nu, nv, e.label).expect("edge subgraph edge must be valid");
            }
        }
        (sub, verts)
    }

    /// A stable multiset signature of `(vertex labels, edge label triples)`
    /// useful as a cheap pre-filter before running full isomorphism checks.
    pub fn signature(&self) -> GraphSignature {
        let mut vlabels = self.labels.clone();
        vlabels.sort();
        let mut elabels: Vec<(Label, Label, Label)> = self
            .edges()
            .map(|e| {
                let (a, b) = {
                    let la = self.label(e.u);
                    let lb = self.label(e.v);
                    if la <= lb {
                        (la, lb)
                    } else {
                        (lb, la)
                    }
                };
                (a, e.label, b)
            })
            .collect();
        elabels.sort();
        GraphSignature { vertex_labels: vlabels, edge_triples: elabels }
    }
}

/// A label-multiset signature used as an isomorphism-invariant pre-filter:
/// isomorphic graphs always have equal signatures.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GraphSignature {
    /// Sorted multiset of vertex labels.
    pub vertex_labels: Vec<Label>,
    /// Sorted multiset of `(min endpoint label, edge label, max endpoint label)` triples.
    pub edge_triples: Vec<(Label, Label, Label)>,
}

impl fmt::Display for LabeledGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "LabeledGraph{}: |V|={}, |E|={}",
            self.name.as_deref().map(|n| format!(" '{n}'")).unwrap_or_default(),
            self.vertex_count(),
            self.edge_count()
        )?;
        for v in self.vertices() {
            write!(f, "  {}({})", v.0, self.label(v))?;
            let ns: Vec<String> = self.neighbor_ids(v).map(|n| n.0.to_string()).collect();
            writeln!(f, " -> [{}]", ns.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tri() -> LabeledGraph {
        LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(2)], [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn add_vertices_and_edges() {
        let g = tri();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(0)));
    }

    #[test]
    fn degree_and_average_degree() {
        let g = tri();
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut g = tri();
        let err = g.add_edge(VertexId(0), VertexId(1), Label::DEFAULT_EDGE).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 0, v: 1 });
        // also reject the reversed direction
        let err = g.add_edge(VertexId(1), VertexId(0), Label::DEFAULT_EDGE).unwrap_err();
        assert_eq!(err, GraphError::DuplicateEdge { u: 1, v: 0 });
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = tri();
        let err = g.add_edge(VertexId(2), VertexId(2), Label::DEFAULT_EDGE).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { vertex: 2 });
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut g = tri();
        let err = g.add_edge(VertexId(0), VertexId(9), Label::DEFAULT_EDGE).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfBounds { vertex: 9, .. }));
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = LabeledGraph::new();
        let a = g.add_vertex(Label(0));
        let b = g.add_vertex(Label(0));
        let c = g.add_vertex(Label(0));
        let d = g.add_vertex(Label(0));
        g.add_unlabeled_edge(a, d).unwrap();
        g.add_unlabeled_edge(a, b).unwrap();
        g.add_unlabeled_edge(a, c).unwrap();
        let ns: Vec<u32> = g.neighbor_ids(a).map(|v| v.0).collect();
        assert_eq!(ns, vec![1, 2, 3]);
    }

    #[test]
    fn edges_reported_once() {
        let g = tri();
        let edges: Vec<(u32, u32)> = g.edges().map(|e| (e.u.0, e.v.0)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn edge_labels_stored() {
        let g = LabeledGraph::from_parts(&[Label(0), Label(1)], [(0u32, 1u32, Label(7))]).unwrap();
        assert_eq!(g.edge_label(VertexId(0), VertexId(1)), Some(Label(7)));
        assert_eq!(g.edge_label(VertexId(1), VertexId(0)), Some(Label(7)));
        assert_eq!(g.edge_label(VertexId(0), VertexId(0)), None);
    }

    #[test]
    fn vertices_with_label() {
        let g = tri();
        assert_eq!(g.vertices_with_label(Label(1)), vec![VertexId(1)]);
        assert!(g.vertices_with_label(Label(9)).is_empty());
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = tri();
        let (sub, map) = g.induced_subgraph(&[VertexId(0), VertexId(2)]);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(map, vec![VertexId(0), VertexId(2)]);
        assert_eq!(sub.label(VertexId(1)), Label(2));
    }

    #[test]
    fn edge_subgraph_builds_path() {
        let g = tri();
        let (sub, verts) = g.edge_subgraph(&[
            Edge::new(VertexId(0), VertexId(1), Label::DEFAULT_EDGE),
            Edge::new(VertexId(1), VertexId(2), Label::DEFAULT_EDGE),
        ]);
        assert_eq!(sub.vertex_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(verts, vec![VertexId(0), VertexId(1), VertexId(2)]);
    }

    #[test]
    fn signature_is_isomorphism_invariant_for_relabeling() {
        // same triangle with vertices in a different order
        let g1 = tri();
        let g2 =
            LabeledGraph::from_unlabeled_edges(&[Label(2), Label(0), Label(1)], [(0, 1), (1, 2), (0, 2)])
                .unwrap();
        assert_eq!(g1.signature(), g2.signature());
    }

    #[test]
    fn distinct_labels_sorted() {
        let g = LabeledGraph::from_unlabeled_edges(&[Label(5), Label(1), Label(5)], [(0, 1)]).unwrap();
        assert_eq!(g.distinct_vertex_labels(), vec![Label(1), Label(5)]);
    }

    #[test]
    fn display_contains_counts() {
        let mut g = tri();
        g.set_name("triangle");
        let s = g.to_string();
        assert!(s.contains("|V|=3"));
        assert!(s.contains("triangle"));
    }

    #[test]
    fn remove_edge_deletes_both_directions() {
        let mut g = tri();
        assert_eq!(g.remove_edge(VertexId(1), VertexId(0)).unwrap(), Label::DEFAULT_EDGE);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_edge(VertexId(0), VertexId(1)));
        assert!(!g.has_edge(VertexId(1), VertexId(0)));
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        // removing again fails
        assert_eq!(
            g.remove_edge(VertexId(0), VertexId(1)).unwrap_err(),
            GraphError::EdgeNotFound { u: 0, v: 1 }
        );
        assert!(matches!(
            g.remove_edge(VertexId(0), VertexId(9)).unwrap_err(),
            GraphError::VertexOutOfBounds { vertex: 9, .. }
        ));
        // an add/remove round trip restores the graph exactly
        let before = tri();
        let mut g = tri();
        g.remove_edge(VertexId(0), VertexId(2)).unwrap();
        g.add_edge(VertexId(0), VertexId(2), Label::DEFAULT_EDGE).unwrap();
        assert_eq!(g, before);
    }

    #[test]
    fn isolate_vertex_strips_incident_edges_only() {
        let mut g = tri();
        assert_eq!(g.isolate_vertex(VertexId(1)).unwrap(), 2);
        assert_eq!(g.vertex_count(), 3, "vertex ids stay dense");
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(VertexId(1)), 0);
        assert!(g.has_edge(VertexId(0), VertexId(2)));
        assert_eq!(g.label(VertexId(1)), Label(1), "the tombstone keeps its label");
        // idempotent on an already-isolated vertex
        assert_eq!(g.isolate_vertex(VertexId(1)).unwrap(), 0);
        assert!(g.isolate_vertex(VertexId(9)).is_err());
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(VertexId(3), VertexId(1), Label(0));
        assert_eq!(e.u, VertexId(1));
        assert_eq!(e.v, VertexId(3));
        assert_eq!(e.other(VertexId(1)), Some(VertexId(3)));
        assert_eq!(e.other(VertexId(3)), Some(VertexId(1)));
        assert_eq!(e.other(VertexId(7)), None);
    }
}
