//! Immutable columnar graph snapshots (CSR) with label-partitioned access
//! structures.
//!
//! [`CsrGraph`] freezes a [`LabeledGraph`] into a compressed-sparse-row
//! layout — one offsets column plus flat neighbor / edge-label columns — and
//! precomputes two label-partitioned indexes on top of it:
//!
//! * a **vertex partition by label**: all vertices carrying a given label as
//!   one contiguous slice ([`CsrGraph::vertices_with_label`]);
//! * an **edge-triple index**: all edges whose canonical
//!   `(min endpoint label, edge label, max endpoint label)` triple matches a
//!   key, as one contiguous slice ([`CsrGraph::triple_edges`]).  Stage-I seed
//!   enumeration walks these buckets instead of scanning every edge.
//!
//! The snapshot is built once per transaction (see [`CsrSnapshot`]) and every
//! downstream pass — seed enumeration, occurrence joins, index serving — is a
//! flat columnar sweep over it.  Both structures preserve the adjacency
//! list's deterministic orders: neighbors ascend by id, and each triple
//! bucket lists its edges in the global `(u asc, v asc)` scan order, so
//! mining output is byte-identical to the adjacency-list path.

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use crate::view::{GraphView, Neighbors};
use serde::{Deserialize, Serialize};

/// The canonical `(min endpoint label, edge label, max endpoint label)` key
/// of an undirected labeled edge.
pub type EdgeTriple = (Label, Label, Label);

/// An immutable CSR snapshot of a [`LabeledGraph`].
///
/// Construction preserves vertex ids, so a `CsrGraph` answers exactly the
/// same queries as the graph it was built from — verified structurally by
/// [`CsrGraph::parity_with`] and property-tested against the adjacency form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` / `edge_labels`.
    offsets: Vec<u32>,
    /// Neighbor column, ascending within each vertex's slice.
    neighbors: Vec<VertexId>,
    /// Edge-label column, parallel to `neighbors`.
    edge_labels: Vec<Label>,
    /// Vertex-label column, indexed by vertex id.
    vertex_labels: Vec<Label>,
    /// Distinct vertex labels, ascending.
    partition_labels: Vec<Label>,
    /// `partition_offsets[i]..partition_offsets[i + 1]` indexes
    /// `partition_vertices` for `partition_labels[i]`.
    partition_offsets: Vec<u32>,
    /// Vertices grouped by label, ascending ids within each group.
    partition_vertices: Vec<VertexId>,
    /// Distinct canonical edge triples, ascending.
    triple_keys: Vec<EdgeTriple>,
    /// `triple_offsets[i]..triple_offsets[i + 1]` indexes `triple_endpoints`
    /// for `triple_keys[i]`.
    triple_offsets: Vec<u32>,
    /// Edge endpoints grouped by triple, oriented label-ascending (ties by
    /// vertex id); bucket-internal order is the global edge scan order.
    triple_endpoints: Vec<(VertexId, VertexId)>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl CsrGraph {
    /// Builds the snapshot of `g`, preserving vertex ids and neighbor order.
    pub fn from_graph(g: &LabeledGraph) -> Self {
        let n = g.vertex_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * g.edge_count());
        let mut edge_labels = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0u32);
        for v in g.vertices() {
            for (w, el) in g.neighbors(v) {
                neighbors.push(w);
                edge_labels.push(el);
            }
            offsets.push(neighbors.len() as u32);
        }

        // vertex partition: stable grouping by (label, id)
        let mut by_label: Vec<(Label, VertexId)> = g.vertices().map(|v| (g.label(v), v)).collect();
        by_label.sort();
        let mut partition_labels = Vec::new();
        let mut partition_offsets = vec![0u32];
        let mut partition_vertices = Vec::with_capacity(n);
        for (l, v) in by_label {
            if partition_labels.last() != Some(&l) {
                if !partition_labels.is_empty() {
                    partition_offsets.push(partition_vertices.len() as u32);
                }
                partition_labels.push(l);
            }
            partition_vertices.push(v);
        }
        partition_offsets.push(partition_vertices.len() as u32);
        if partition_labels.is_empty() {
            partition_offsets = vec![0];
        }

        // edge-triple index: group the global edge scan by canonical triple
        // with a stable sort, so each bucket preserves the scan order
        let mut keyed: Vec<(EdgeTriple, (VertexId, VertexId))> = g
            .edges()
            .map(|e| {
                let (lu, lv) = (g.label(e.u), g.label(e.v));
                if lu <= lv {
                    ((lu, e.label, lv), (e.u, e.v))
                } else {
                    ((lv, e.label, lu), (e.v, e.u))
                }
            })
            .collect();
        keyed.sort_by_key(|&(key, _)| key);
        let mut triple_keys = Vec::new();
        let mut triple_offsets = vec![0u32];
        let mut triple_endpoints = Vec::with_capacity(keyed.len());
        for (key, endpoints) in keyed {
            if triple_keys.last() != Some(&key) {
                if !triple_keys.is_empty() {
                    triple_offsets.push(triple_endpoints.len() as u32);
                }
                triple_keys.push(key);
            }
            triple_endpoints.push(endpoints);
        }
        triple_offsets.push(triple_endpoints.len() as u32);
        if triple_keys.is_empty() {
            triple_offsets = vec![0];
        }

        CsrGraph {
            offsets,
            neighbors,
            edge_labels,
            vertex_labels: g.labels().to_vec(),
            partition_labels,
            partition_offsets,
            partition_vertices,
            triple_keys,
            triple_offsets,
            triple_endpoints,
            edge_count: g.edge_count(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.vertex_labels[v.index()]
    }

    /// The vertex-label column, indexed by vertex id.
    pub fn labels(&self) -> &[Label] {
        &self.vertex_labels
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    #[inline]
    fn neighbor_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let i = v.index();
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// The sorted neighbor-id column slice of `v`.
    #[inline]
    pub fn neighbor_ids(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.neighbor_range(v)]
    }

    /// `(neighbor, edge label)` iterator over `v`'s slice, tied to the full
    /// borrow lifetime (the [`GraphView`] method can only tie it to `&self`).
    #[inline]
    pub fn neighbors_at(&self, v: VertexId) -> Neighbors<'_> {
        let r = self.neighbor_range(v);
        Neighbors::Columns { ids: &self.neighbors[r.clone()], labels: &self.edge_labels[r], at: 0 }
    }

    /// True when the edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_slot(u, v).is_some()
    }

    /// Label of edge `(u, v)`, or `None` when absent.
    pub fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label> {
        self.edge_slot(u, v).map(|slot| self.edge_labels[slot])
    }

    /// Binary search for `v` in `u`'s sorted neighbor slice, returning the
    /// flat column index.
    #[inline]
    fn edge_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        if u.index() >= self.vertex_count() || v.index() >= self.vertex_count() {
            return None;
        }
        let r = self.neighbor_range(u);
        self.neighbors[r.clone()].binary_search(&v).ok().map(|i| r.start + i)
    }

    /// All vertices carrying label `l`, as a contiguous ascending slice of
    /// the label partition (empty when the label is absent).
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        match self.partition_labels.binary_search(&l) {
            Ok(i) => {
                &self.partition_vertices
                    [self.partition_offsets[i] as usize..self.partition_offsets[i + 1] as usize]
            }
            Err(_) => &[],
        }
    }

    /// Distinct vertex labels present, ascending.
    pub fn distinct_vertex_labels(&self) -> &[Label] {
        &self.partition_labels
    }

    /// Distinct canonical edge triples present, ascending.
    pub fn edge_triple_keys(&self) -> &[EdgeTriple] {
        &self.triple_keys
    }

    /// All edges whose canonical triple is `(la, el, lb)` (callers may pass
    /// the endpoint labels in either order), as a contiguous slice.
    ///
    /// Each entry is the edge's endpoints oriented so the first carries the
    /// smaller label (ties broken by vertex id, i.e. `u < v`); the slice
    /// preserves the global `(u asc, v asc)` edge scan order.  Walking one
    /// bucket visits exactly the edges of that triple — this is what replaces
    /// the full edge scan per label triple in Stage-I seed enumeration.
    pub fn triple_edges(&self, la: Label, el: Label, lb: Label) -> &[(VertexId, VertexId)] {
        let key = if la <= lb { (la, el, lb) } else { (lb, el, la) };
        match self.triple_keys.binary_search(&key) {
            Ok(i) => {
                &self.triple_endpoints[self.triple_offsets[i] as usize..self.triple_offsets[i + 1] as usize]
            }
            Err(_) => &[],
        }
    }

    /// Iterates over `(triple key, edge bucket)` pairs in ascending key
    /// order — the Stage-I seed walk.
    pub fn edge_triples(&self) -> impl Iterator<Item = (EdgeTriple, &[(VertexId, VertexId)])> + '_ {
        self.triple_keys.iter().enumerate().map(move |(i, &key)| {
            let bucket =
                &self.triple_endpoints[self.triple_offsets[i] as usize..self.triple_offsets[i + 1] as usize];
            (key, bucket)
        })
    }

    /// Structural parity check against an adjacency-list graph: same labels,
    /// same neighbor slices, same edge count.  Test/verification helper.
    pub fn parity_with(&self, g: &LabeledGraph) -> bool {
        if self.vertex_count() != g.vertex_count() || self.edge_count() != g.edge_count() {
            return false;
        }
        if self.labels() != g.labels() {
            return false;
        }
        g.vertices().all(|v| self.neighbors_at(v).eq(g.neighbors(v)))
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn vertex_count(&self) -> usize {
        CsrGraph::vertex_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        CsrGraph::edge_count(self)
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        CsrGraph::label(self, v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        self.neighbors_at(v)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }

    #[inline]
    fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label> {
        CsrGraph::edge_label(self, u, v)
    }
}

/// A per-transaction collection of CSR snapshots: the frozen form of a data
/// graph or graph database, built once per mining transaction and then
/// served read-only to any number of concurrent requests.
///
/// The snapshot records which *setting* it was built from (single graph vs
/// graph-transaction database), so representation-independent answers (e.g.
/// "is this the transaction setting?") survive the freeze — a one-transaction
/// database frozen into a snapshot still reports as transactional.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrSnapshot {
    graphs: Vec<CsrGraph>,
    transactional: bool,
}

impl CsrSnapshot {
    /// Snapshot of a single data graph (one transaction).
    pub fn from_graph(g: &LabeledGraph) -> Self {
        CsrSnapshot { graphs: vec![CsrGraph::from_graph(g)], transactional: false }
    }

    /// Snapshot of every transaction of a database, in transaction order.
    pub fn from_database(db: &crate::transaction::GraphDatabase) -> Self {
        CsrSnapshot { graphs: db.iter().map(|(_, g)| CsrGraph::from_graph(g)).collect(), transactional: true }
    }

    /// True when the snapshot was built from a graph-transaction database
    /// (regardless of how many transactions it holds).
    pub fn is_transactional(&self) -> bool {
        self.transactional
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the snapshot holds no transaction.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The snapshot of transaction `t`.
    ///
    /// # Panics
    /// Panics when `t` is out of range.
    #[inline]
    pub fn graph(&self, t: usize) -> &CsrGraph {
        &self.graphs[t]
    }

    /// Iterates over `(transaction index, snapshot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CsrGraph)> {
        self.graphs.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn graph() -> LabeledGraph {
        // labels: 0(a) 1(b) 2(a) 3(c); edges with two labels
        LabeledGraph::from_parts(
            &[l(0), l(1), l(0), l(2)],
            [(0u32, 1u32, l(5)), (1, 2, l(5)), (0, 2, l(6)), (2, 3, l(5))],
        )
        .unwrap()
    }

    #[test]
    fn snapshot_preserves_structure() {
        let g = graph();
        let c = CsrGraph::from_graph(&g);
        assert!(c.parity_with(&g));
        assert_eq!(c.vertex_count(), 4);
        assert_eq!(c.edge_count(), 4);
        assert_eq!(c.degree(VertexId(2)), 3);
        assert_eq!(c.label(VertexId(3)), l(2));
        assert!(c.has_edge(VertexId(0), VertexId(2)));
        assert!(!c.has_edge(VertexId(0), VertexId(3)));
        assert!(!c.has_edge(VertexId(0), VertexId(9)));
        assert_eq!(c.edge_label(VertexId(0), VertexId(2)), Some(l(6)));
        assert_eq!(c.edge_label(VertexId(1), VertexId(3)), None);
    }

    #[test]
    fn label_partition_groups_vertices() {
        let c = CsrGraph::from_graph(&graph());
        assert_eq!(c.vertices_with_label(l(0)), &[VertexId(0), VertexId(2)]);
        assert_eq!(c.vertices_with_label(l(1)), &[VertexId(1)]);
        assert_eq!(c.vertices_with_label(l(9)), &[] as &[VertexId]);
        assert_eq!(c.distinct_vertex_labels(), &[l(0), l(1), l(2)]);
    }

    #[test]
    fn triple_index_buckets_edges() {
        let g = graph();
        let c = CsrGraph::from_graph(&g);
        // triples: (a,5,b) x2 [(0,1),(2,1)], (a,6,a) x1 [(0,2)], (a,5,c) x1 [(2,3)]
        assert_eq!(c.edge_triple_keys().len(), 3);
        let ab = c.triple_edges(l(0), l(5), l(1));
        assert_eq!(ab, &[(VertexId(0), VertexId(1)), (VertexId(2), VertexId(1))]);
        // endpoint labels in either order reach the same bucket
        assert_eq!(c.triple_edges(l(1), l(5), l(0)), ab);
        assert_eq!(c.triple_edges(l(0), l(6), l(0)), &[(VertexId(0), VertexId(2))]);
        assert_eq!(c.triple_edges(l(0), l(5), l(2)), &[(VertexId(2), VertexId(3))]);
        assert!(c.triple_edges(l(0), l(9), l(1)).is_empty());
        // buckets partition the edge set
        let total: usize = c.edge_triples().map(|(_, bucket)| bucket.len()).sum();
        assert_eq!(total, c.edge_count());
    }

    #[test]
    fn triple_bucket_orientation_is_label_ascending() {
        let g = graph();
        let c = CsrGraph::from_graph(&g);
        for (key, bucket) in c.edge_triples() {
            for &(u, v) in bucket {
                assert_eq!((c.label(u), c.label(v)), (key.0, key.2));
                if key.0 == key.2 {
                    assert!(u < v);
                }
            }
        }
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = LabeledGraph::new();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.vertex_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert!(c.distinct_vertex_labels().is_empty());
        assert!(c.edge_triple_keys().is_empty());
        assert!(c.parity_with(&g));
    }

    #[test]
    fn snapshot_collection() {
        let g = graph();
        let s = CsrSnapshot::from_graph(&g);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(!s.is_transactional());
        assert!(s.graph(0).parity_with(&g));
        let db = crate::transaction::GraphDatabase::from_graphs(vec![g.clone(), g.clone()]);
        let s2 = CsrSnapshot::from_database(&db);
        assert_eq!(s2.len(), 2);
        assert!(s2.is_transactional());
        // the setting survives the freeze even for a one-transaction database
        let one = crate::transaction::GraphDatabase::from_graphs(vec![g.clone()]);
        assert!(CsrSnapshot::from_database(&one).is_transactional());
        assert_eq!(s2.iter().count(), 2);
        assert!(s2.iter().all(|(_, c)| c.parity_with(&g)));
    }
}
