//! Immutable columnar graph snapshots (CSR) with label-partitioned access
//! structures.
//!
//! [`CsrGraph`] freezes a [`LabeledGraph`] into a compressed-sparse-row
//! layout — one offsets column plus flat neighbor / edge-label columns — and
//! precomputes two label-partitioned indexes on top of it:
//!
//! * a **vertex partition by label**: all vertices carrying a given label as
//!   one contiguous slice ([`CsrGraph::vertices_with_label`]);
//! * an **edge-triple index**: all edges whose canonical
//!   `(min endpoint label, edge label, max endpoint label)` triple matches a
//!   key, as one contiguous slice ([`CsrGraph::triple_edges`]).  Stage-I seed
//!   enumeration walks these buckets instead of scanning every edge.
//!
//! The snapshot is built once per transaction (see [`CsrSnapshot`]) and every
//! downstream pass — seed enumeration, occurrence joins, index serving — is a
//! flat columnar sweep over it.  Both structures preserve the adjacency
//! list's deterministic orders: neighbors ascend by id, and each triple
//! bucket lists its edges in the global `(u asc, v asc)` scan order, so
//! mining output is byte-identical to the adjacency-list path.
//!
//! Construction itself is a **one-pass counting-sort build**
//! ([`SnapshotBuilder`]): the label partition and the triple index are laid
//! out via histogram → prefix-sum → stable scatter over the vertex/edge scan
//! order instead of sorting materialized `(key, payload)` pairs, all columns
//! are written into reusable arenas (a warm re-freeze performs **zero** heap
//! allocations), and [`CsrSnapshot::from_database_with_threads`] shards the
//! per-transaction builds across pool workers with an index-addressed stitch
//! that is byte-identical to the serial build by construction.  The original
//! sort-based build is retained as [`CsrGraph::from_graph_reference`] — the
//! parity oracle and ingest-benchmark baseline.

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use crate::view::{GraphView, Neighbors};
use serde::{Deserialize, Serialize};

/// The canonical `(min endpoint label, edge label, max endpoint label)` key
/// of an undirected labeled edge.
pub type EdgeTriple = (Label, Label, Label);

/// An immutable CSR snapshot of a [`LabeledGraph`].
///
/// Construction preserves vertex ids, so a `CsrGraph` answers exactly the
/// same queries as the graph it was built from — verified structurally by
/// [`CsrGraph::parity_with`] and property-tested against the adjacency form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` / `edge_labels`.
    offsets: Vec<u32>,
    /// Neighbor column, ascending within each vertex's slice.
    neighbors: Vec<VertexId>,
    /// Edge-label column, parallel to `neighbors`.
    edge_labels: Vec<Label>,
    /// Vertex-label column, indexed by vertex id.
    vertex_labels: Vec<Label>,
    /// Distinct vertex labels, ascending.
    partition_labels: Vec<Label>,
    /// `partition_offsets[i]..partition_offsets[i + 1]` indexes
    /// `partition_vertices` for `partition_labels[i]`.
    partition_offsets: Vec<u32>,
    /// Vertices grouped by label, ascending ids within each group.
    partition_vertices: Vec<VertexId>,
    /// Distinct canonical edge triples, ascending.
    triple_keys: Vec<EdgeTriple>,
    /// `triple_offsets[i]..triple_offsets[i + 1]` indexes `triple_endpoints`
    /// for `triple_keys[i]`.
    triple_offsets: Vec<u32>,
    /// Edge endpoints grouped by triple, oriented label-ascending (ties by
    /// vertex id); bucket-internal order is the global edge scan order.
    triple_endpoints: Vec<(VertexId, VertexId)>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl CsrGraph {
    /// Builds the snapshot of `g`, preserving vertex ids and neighbor order.
    ///
    /// This is the one-pass counting-sort build; callers freezing many
    /// graphs should hold a [`SnapshotBuilder`] and reuse its scratch.
    pub fn from_graph(g: &LabeledGraph) -> Self {
        SnapshotBuilder::new().build(g)
    }

    /// An empty snapshot shell for [`SnapshotBuilder::build_into`] to fill.
    fn empty() -> Self {
        CsrGraph {
            offsets: Vec::new(),
            neighbors: Vec::new(),
            edge_labels: Vec::new(),
            vertex_labels: Vec::new(),
            partition_labels: Vec::new(),
            partition_offsets: Vec::new(),
            partition_vertices: Vec::new(),
            triple_keys: Vec::new(),
            triple_offsets: Vec::new(),
            triple_endpoints: Vec::new(),
            edge_count: 0,
        }
    }

    /// The retained sort-based build: materializes `(label, id)` and
    /// `(triple, endpoints)` pairs and groups them with stable sorts.
    ///
    /// Byte-identical to [`CsrGraph::from_graph`] (property-tested); kept as
    /// the parity oracle and as the ingest benchmark's pre-arena baseline.
    pub fn from_graph_reference(g: &LabeledGraph) -> Self {
        let n = g.vertex_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * g.edge_count());
        let mut edge_labels = Vec::with_capacity(2 * g.edge_count());
        offsets.push(0u32);
        for v in g.vertices() {
            for (w, el) in g.neighbors(v) {
                neighbors.push(w);
                edge_labels.push(el);
            }
            offsets.push(neighbors.len() as u32);
        }

        // vertex partition: stable grouping by (label, id)
        let mut by_label: Vec<(Label, VertexId)> = g.vertices().map(|v| (g.label(v), v)).collect();
        by_label.sort();
        let mut partition_labels = Vec::new();
        let mut partition_offsets = vec![0u32];
        let mut partition_vertices = Vec::with_capacity(n);
        for (l, v) in by_label {
            if partition_labels.last() != Some(&l) {
                if !partition_labels.is_empty() {
                    partition_offsets.push(partition_vertices.len() as u32);
                }
                partition_labels.push(l);
            }
            partition_vertices.push(v);
        }
        partition_offsets.push(partition_vertices.len() as u32);
        if partition_labels.is_empty() {
            partition_offsets = vec![0];
        }

        // edge-triple index: group the global edge scan by canonical triple
        // with a stable sort, so each bucket preserves the scan order
        let mut keyed: Vec<(EdgeTriple, (VertexId, VertexId))> = g
            .edges()
            .map(|e| {
                let (lu, lv) = (g.label(e.u), g.label(e.v));
                if lu <= lv {
                    ((lu, e.label, lv), (e.u, e.v))
                } else {
                    ((lv, e.label, lu), (e.v, e.u))
                }
            })
            .collect();
        keyed.sort_by_key(|&(key, _)| key);
        let mut triple_keys = Vec::new();
        let mut triple_offsets = vec![0u32];
        let mut triple_endpoints = Vec::with_capacity(keyed.len());
        for (key, endpoints) in keyed {
            if triple_keys.last() != Some(&key) {
                if !triple_keys.is_empty() {
                    triple_offsets.push(triple_endpoints.len() as u32);
                }
                triple_keys.push(key);
            }
            triple_endpoints.push(endpoints);
        }
        triple_offsets.push(triple_endpoints.len() as u32);
        if triple_keys.is_empty() {
            triple_offsets = vec![0];
        }

        CsrGraph {
            offsets,
            neighbors,
            edge_labels,
            vertex_labels: g.labels().to_vec(),
            partition_labels,
            partition_offsets,
            partition_vertices,
            triple_keys,
            triple_offsets,
            triple_endpoints,
            edge_count: g.edge_count(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Label of vertex `v`.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.vertex_labels[v.index()]
    }

    /// The vertex-label column, indexed by vertex id.
    pub fn labels(&self) -> &[Label] {
        &self.vertex_labels
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    #[inline]
    fn neighbor_range(&self, v: VertexId) -> std::ops::Range<usize> {
        let i = v.index();
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// The sorted neighbor-id column slice of `v`.
    #[inline]
    pub fn neighbor_ids(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.neighbor_range(v)]
    }

    /// `(neighbor, edge label)` iterator over `v`'s slice, tied to the full
    /// borrow lifetime (the [`GraphView`] method can only tie it to `&self`).
    #[inline]
    pub fn neighbors_at(&self, v: VertexId) -> Neighbors<'_> {
        let r = self.neighbor_range(v);
        Neighbors::Columns { ids: &self.neighbors[r.clone()], labels: &self.edge_labels[r], at: 0 }
    }

    /// True when the edge `(u, v)` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_slot(u, v).is_some()
    }

    /// Label of edge `(u, v)`, or `None` when absent.
    pub fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label> {
        self.edge_slot(u, v).map(|slot| self.edge_labels[slot])
    }

    /// Binary search for `v` in `u`'s sorted neighbor slice, returning the
    /// flat column index.
    #[inline]
    fn edge_slot(&self, u: VertexId, v: VertexId) -> Option<usize> {
        if u.index() >= self.vertex_count() || v.index() >= self.vertex_count() {
            return None;
        }
        let r = self.neighbor_range(u);
        self.neighbors[r.clone()].binary_search(&v).ok().map(|i| r.start + i)
    }

    /// All vertices carrying label `l`, as a contiguous ascending slice of
    /// the label partition (empty when the label is absent).
    pub fn vertices_with_label(&self, l: Label) -> &[VertexId] {
        match self.partition_labels.binary_search(&l) {
            Ok(i) => {
                &self.partition_vertices
                    [self.partition_offsets[i] as usize..self.partition_offsets[i + 1] as usize]
            }
            Err(_) => &[],
        }
    }

    /// Distinct vertex labels present, ascending.
    pub fn distinct_vertex_labels(&self) -> &[Label] {
        &self.partition_labels
    }

    /// Distinct canonical edge triples present, ascending.
    pub fn edge_triple_keys(&self) -> &[EdgeTriple] {
        &self.triple_keys
    }

    /// All edges whose canonical triple is `(la, el, lb)` (callers may pass
    /// the endpoint labels in either order), as a contiguous slice.
    ///
    /// Each entry is the edge's endpoints oriented so the first carries the
    /// smaller label (ties broken by vertex id, i.e. `u < v`); the slice
    /// preserves the global `(u asc, v asc)` edge scan order.  Walking one
    /// bucket visits exactly the edges of that triple — this is what replaces
    /// the full edge scan per label triple in Stage-I seed enumeration.
    pub fn triple_edges(&self, la: Label, el: Label, lb: Label) -> &[(VertexId, VertexId)] {
        let key = if la <= lb { (la, el, lb) } else { (lb, el, la) };
        match self.triple_keys.binary_search(&key) {
            Ok(i) => {
                &self.triple_endpoints[self.triple_offsets[i] as usize..self.triple_offsets[i + 1] as usize]
            }
            Err(_) => &[],
        }
    }

    /// Iterates over `(triple key, edge bucket)` pairs in ascending key
    /// order — the Stage-I seed walk.
    pub fn edge_triples(&self) -> impl Iterator<Item = (EdgeTriple, &[(VertexId, VertexId)])> + '_ {
        self.triple_keys.iter().enumerate().map(move |(i, &key)| {
            let bucket =
                &self.triple_endpoints[self.triple_offsets[i] as usize..self.triple_offsets[i + 1] as usize];
            (key, bucket)
        })
    }

    /// Heap bytes held by this snapshot's column arenas (allocated
    /// capacities, not just occupied lengths) — the ingest benchmark's
    /// bytes-in-arenas counter.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.offsets.capacity() * size_of::<u32>()
            + self.neighbors.capacity() * size_of::<VertexId>()
            + self.edge_labels.capacity() * size_of::<Label>()
            + self.vertex_labels.capacity() * size_of::<Label>()
            + self.partition_labels.capacity() * size_of::<Label>()
            + self.partition_offsets.capacity() * size_of::<u32>()
            + self.partition_vertices.capacity() * size_of::<VertexId>()
            + self.triple_keys.capacity() * size_of::<EdgeTriple>()
            + self.triple_offsets.capacity() * size_of::<u32>()
            + self.triple_endpoints.capacity() * size_of::<(VertexId, VertexId)>()
    }

    /// Structural parity check against an adjacency-list graph: same labels,
    /// same neighbor slices, same edge count.  Test/verification helper.
    pub fn parity_with(&self, g: &LabeledGraph) -> bool {
        if self.vertex_count() != g.vertex_count() || self.edge_count() != g.edge_count() {
            return false;
        }
        if self.labels() != g.labels() {
            return false;
        }
        g.vertices().all(|v| self.neighbors_at(v).eq(g.neighbors(v)))
    }
}

impl GraphView for CsrGraph {
    #[inline]
    fn vertex_count(&self) -> usize {
        CsrGraph::vertex_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        CsrGraph::edge_count(self)
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        CsrGraph::label(self, v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        self.neighbors_at(v)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }

    #[inline]
    fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label> {
        CsrGraph::edge_label(self, u, v)
    }
}

/// Reusable scratch for the one-pass counting-sort CSR build.
///
/// The build never sorts materialized `(key, payload)` pairs: the label
/// partition and the triple index are laid out by collecting the distinct
/// keys into a small sorted scratch (one `Vec::insert` per *distinct* key,
/// one binary search per element), prefix-summing the per-key counts into
/// the offsets column, and scattering elements through per-key cursors in
/// their original scan order — a stable counting sort, so every column is
/// byte-identical to the sort-based reference build.
///
/// All intermediate state lives in this builder and all output columns are
/// written with `clear` + `extend`/indexed stores, so freezing many
/// transactions through one builder (or re-freezing into an existing
/// [`CsrGraph`] via [`SnapshotBuilder::build_into`]) reaches a steady state
/// with **zero** heap allocations per graph — pinned by the counting
/// allocator in `tests/alloc_hot_loops.rs`.
#[derive(Debug, Default)]
pub struct SnapshotBuilder {
    /// Distinct vertex labels of the current graph, ascending.
    labels: Vec<Label>,
    /// Per-label element counts, then (after the prefix sum) scatter cursors.
    label_cursors: Vec<u32>,
    /// Distinct canonical edge triples of the current graph, ascending.
    triples: Vec<EdgeTriple>,
    /// Per-triple element counts, then scatter cursors.
    triple_cursors: Vec<u32>,
}

impl SnapshotBuilder {
    /// A builder with empty scratch.
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    /// Builds the snapshot of `g` into a fresh [`CsrGraph`].
    pub fn build(&mut self, g: &LabeledGraph) -> CsrGraph {
        let mut out = CsrGraph::empty();
        self.build_into(g, &mut out);
        out
    }

    /// Rebuilds `out` in place as the snapshot of `g`, reusing both the
    /// builder's counting scratch and `out`'s column arenas.
    pub fn build_into(&mut self, g: &LabeledGraph, out: &mut CsrGraph) {
        let n = g.vertex_count();

        // adjacency columns: already one pass in (vertex, neighbor) order
        out.offsets.clear();
        out.neighbors.clear();
        out.edge_labels.clear();
        out.offsets.reserve(n + 1);
        out.neighbors.reserve(2 * g.edge_count());
        out.edge_labels.reserve(2 * g.edge_count());
        out.offsets.push(0u32);
        for v in g.vertices() {
            for (w, el) in g.neighbors(v) {
                out.neighbors.push(w);
                out.edge_labels.push(el);
            }
            out.offsets.push(out.neighbors.len() as u32);
        }
        out.vertex_labels.clear();
        out.vertex_labels.extend_from_slice(g.labels());
        out.edge_count = g.edge_count();

        // vertex partition: count per distinct label, prefix-sum, then
        // scatter vertices in ascending-id order — a stable counting sort
        // equal to grouping a stable sort by (label, id)
        self.labels.clear();
        self.label_cursors.clear();
        for &l in g.labels() {
            match self.labels.binary_search(&l) {
                Ok(i) => self.label_cursors[i] += 1,
                Err(i) => {
                    self.labels.insert(i, l);
                    self.label_cursors.insert(i, 1);
                }
            }
        }
        out.partition_labels.clear();
        out.partition_labels.extend_from_slice(&self.labels);
        out.partition_offsets.clear();
        out.partition_offsets.reserve(self.labels.len() + 1);
        out.partition_offsets.push(0u32);
        let mut total = 0u32;
        for c in self.label_cursors.iter_mut() {
            let count = *c;
            *c = total; // cursor = the group's first slot
            total += count;
            out.partition_offsets.push(total);
        }
        out.partition_vertices.clear();
        out.partition_vertices.resize(n, VertexId(0));
        for v in g.vertices() {
            let i = self
                .labels
                .binary_search(&g.label(v))
                .expect("every vertex label was collected in the counting pass");
            out.partition_vertices[self.label_cursors[i] as usize] = v;
            self.label_cursors[i] += 1;
        }

        // triple index: same counting sort over the global edge scan, with
        // endpoints oriented label-ascending (ties by vertex id)
        self.triples.clear();
        self.triple_cursors.clear();
        for e in g.edges() {
            let (lu, lv) = (g.label(e.u), g.label(e.v));
            let key = if lu <= lv { (lu, e.label, lv) } else { (lv, e.label, lu) };
            match self.triples.binary_search(&key) {
                Ok(i) => self.triple_cursors[i] += 1,
                Err(i) => {
                    self.triples.insert(i, key);
                    self.triple_cursors.insert(i, 1);
                }
            }
        }
        out.triple_keys.clear();
        out.triple_keys.extend_from_slice(&self.triples);
        out.triple_offsets.clear();
        out.triple_offsets.reserve(self.triples.len() + 1);
        out.triple_offsets.push(0u32);
        let mut total = 0u32;
        for c in self.triple_cursors.iter_mut() {
            let count = *c;
            *c = total;
            total += count;
            out.triple_offsets.push(total);
        }
        out.triple_endpoints.clear();
        out.triple_endpoints.resize(g.edge_count(), (VertexId(0), VertexId(0)));
        for e in g.edges() {
            let (lu, lv) = (g.label(e.u), g.label(e.v));
            let (key, endpoints) =
                if lu <= lv { ((lu, e.label, lv), (e.u, e.v)) } else { ((lv, e.label, lu), (e.v, e.u)) };
            let i = self
                .triples
                .binary_search(&key)
                .expect("every edge triple was collected in the counting pass");
            out.triple_endpoints[self.triple_cursors[i] as usize] = endpoints;
            self.triple_cursors[i] += 1;
        }
    }
}

/// A per-transaction collection of CSR snapshots: the frozen form of a data
/// graph or graph database, built once per mining transaction and then
/// served read-only to any number of concurrent requests.
///
/// The snapshot records which *setting* it was built from (single graph vs
/// graph-transaction database), so representation-independent answers (e.g.
/// "is this the transaction setting?") survive the freeze — a one-transaction
/// database frozen into a snapshot still reports as transactional.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrSnapshot {
    graphs: Vec<CsrGraph>,
    transactional: bool,
}

impl CsrSnapshot {
    /// Snapshot of a single data graph (one transaction).
    pub fn from_graph(g: &LabeledGraph) -> Self {
        CsrSnapshot { graphs: vec![CsrGraph::from_graph(g)], transactional: false }
    }

    /// Snapshot of every transaction of a database, in transaction order.
    pub fn from_database(db: &crate::transaction::GraphDatabase) -> Self {
        Self::from_database_with_threads(db, 1)
    }

    /// Snapshot of every transaction of a database, built per-shard on
    /// `threads` pool workers.
    ///
    /// Transactions are chunked with [`skinny_pool::chunk_ranges`], each
    /// worker freezes its shard through its own reused [`SnapshotBuilder`]
    /// arena, and the shards are stitched back in chunk (= transaction)
    /// order.  Every transaction's snapshot depends only on that
    /// transaction's graph, so the result is **byte-identical** to the
    /// serial build for every thread count (property-tested in
    /// `crates/graph/tests/csr_properties.rs`).
    pub fn from_database_with_threads(db: &crate::transaction::GraphDatabase, threads: usize) -> Self {
        let n = db.len();
        let graphs = if threads <= 1 || n < 2 {
            let mut builder = SnapshotBuilder::new();
            db.iter().map(|(_, g)| builder.build(g)).collect()
        } else {
            let ranges = skinny_pool::chunk_ranges(n, threads, 4);
            let chunks: Vec<Vec<CsrGraph>> =
                skinny_pool::run_with(threads, ranges.len(), SnapshotBuilder::new, |builder, c| {
                    ranges[c].clone().map(|t| builder.build(&db[t])).collect()
                });
            let mut graphs = Vec::with_capacity(n);
            for chunk in chunks {
                graphs.extend(chunk);
            }
            graphs
        };
        CsrSnapshot { graphs, transactional: true }
    }

    /// True when the snapshot was built from a graph-transaction database
    /// (regardless of how many transactions it holds).
    pub fn is_transactional(&self) -> bool {
        self.transactional
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True when the snapshot holds no transaction.
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The snapshot of transaction `t`.
    ///
    /// # Panics
    /// Panics when `t` is out of range.
    #[inline]
    pub fn graph(&self, t: usize) -> &CsrGraph {
        &self.graphs[t]
    }

    /// Iterates over `(transaction index, snapshot)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &CsrGraph)> {
        self.graphs.iter().enumerate()
    }

    /// Total heap bytes held by the per-transaction column arenas
    /// ([`CsrGraph::heap_bytes`] summed over transactions).
    pub fn heap_bytes(&self) -> usize {
        self.graphs.iter().map(CsrGraph::heap_bytes).sum()
    }

    /// Re-freezes transaction `t` in place from `g` through `builder`'s warm
    /// arena path ([`SnapshotBuilder::build_into`]): the existing
    /// [`CsrGraph`]'s columns are reused, so a same-shaped refresh performs
    /// zero heap allocations.  This is the incremental update path — only
    /// dirty transactions are re-frozen, everything else keeps its columns
    /// untouched.
    ///
    /// # Panics
    /// Panics when `t` is out of range.
    pub fn refreeze_transaction(&mut self, t: usize, g: &LabeledGraph, builder: &mut SnapshotBuilder) {
        builder.build_into(g, &mut self.graphs[t]);
    }

    /// Appends the snapshot of a newly added transaction, returning its
    /// index.  Only meaningful for transactional snapshots (appending to a
    /// single-graph snapshot would change the setting, so this panics there).
    pub fn push_transaction(&mut self, g: &LabeledGraph, builder: &mut SnapshotBuilder) -> usize {
        assert!(self.transactional, "cannot append a transaction to a single-graph snapshot");
        self.graphs.push(builder.build(g));
        self.graphs.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn graph() -> LabeledGraph {
        // labels: 0(a) 1(b) 2(a) 3(c); edges with two labels
        LabeledGraph::from_parts(
            &[l(0), l(1), l(0), l(2)],
            [(0u32, 1u32, l(5)), (1, 2, l(5)), (0, 2, l(6)), (2, 3, l(5))],
        )
        .unwrap()
    }

    #[test]
    fn snapshot_preserves_structure() {
        let g = graph();
        let c = CsrGraph::from_graph(&g);
        assert!(c.parity_with(&g));
        assert_eq!(c.vertex_count(), 4);
        assert_eq!(c.edge_count(), 4);
        assert_eq!(c.degree(VertexId(2)), 3);
        assert_eq!(c.label(VertexId(3)), l(2));
        assert!(c.has_edge(VertexId(0), VertexId(2)));
        assert!(!c.has_edge(VertexId(0), VertexId(3)));
        assert!(!c.has_edge(VertexId(0), VertexId(9)));
        assert_eq!(c.edge_label(VertexId(0), VertexId(2)), Some(l(6)));
        assert_eq!(c.edge_label(VertexId(1), VertexId(3)), None);
    }

    #[test]
    fn label_partition_groups_vertices() {
        let c = CsrGraph::from_graph(&graph());
        assert_eq!(c.vertices_with_label(l(0)), &[VertexId(0), VertexId(2)]);
        assert_eq!(c.vertices_with_label(l(1)), &[VertexId(1)]);
        assert_eq!(c.vertices_with_label(l(9)), &[] as &[VertexId]);
        assert_eq!(c.distinct_vertex_labels(), &[l(0), l(1), l(2)]);
    }

    #[test]
    fn triple_index_buckets_edges() {
        let g = graph();
        let c = CsrGraph::from_graph(&g);
        // triples: (a,5,b) x2 [(0,1),(2,1)], (a,6,a) x1 [(0,2)], (a,5,c) x1 [(2,3)]
        assert_eq!(c.edge_triple_keys().len(), 3);
        let ab = c.triple_edges(l(0), l(5), l(1));
        assert_eq!(ab, &[(VertexId(0), VertexId(1)), (VertexId(2), VertexId(1))]);
        // endpoint labels in either order reach the same bucket
        assert_eq!(c.triple_edges(l(1), l(5), l(0)), ab);
        assert_eq!(c.triple_edges(l(0), l(6), l(0)), &[(VertexId(0), VertexId(2))]);
        assert_eq!(c.triple_edges(l(0), l(5), l(2)), &[(VertexId(2), VertexId(3))]);
        assert!(c.triple_edges(l(0), l(9), l(1)).is_empty());
        // buckets partition the edge set
        let total: usize = c.edge_triples().map(|(_, bucket)| bucket.len()).sum();
        assert_eq!(total, c.edge_count());
    }

    #[test]
    fn triple_bucket_orientation_is_label_ascending() {
        let g = graph();
        let c = CsrGraph::from_graph(&g);
        for (key, bucket) in c.edge_triples() {
            for &(u, v) in bucket {
                assert_eq!((c.label(u), c.label(v)), (key.0, key.2));
                if key.0 == key.2 {
                    assert!(u < v);
                }
            }
        }
    }

    #[test]
    fn empty_graph_snapshot() {
        let g = LabeledGraph::new();
        let c = CsrGraph::from_graph(&g);
        assert_eq!(c.vertex_count(), 0);
        assert_eq!(c.edge_count(), 0);
        assert!(c.distinct_vertex_labels().is_empty());
        assert!(c.edge_triple_keys().is_empty());
        assert!(c.parity_with(&g));
    }

    #[test]
    fn counting_sort_build_matches_reference() {
        let g = graph();
        assert_eq!(CsrGraph::from_graph(&g), CsrGraph::from_graph_reference(&g));
        let empty = LabeledGraph::new();
        assert_eq!(CsrGraph::from_graph(&empty), CsrGraph::from_graph_reference(&empty));
        // unlabeled-edge single-label graph: one partition group, one triple
        let path = LabeledGraph::from_unlabeled_edges(&[l(7), l(7), l(7)], [(0u32, 1u32), (1, 2)]).unwrap();
        assert_eq!(CsrGraph::from_graph(&path), CsrGraph::from_graph_reference(&path));
    }

    #[test]
    fn builder_reuse_and_in_place_rebuild() {
        let g = graph();
        let h = LabeledGraph::from_unlabeled_edges(&[l(3), l(4)], [(0u32, 1u32)]).unwrap();
        let mut builder = SnapshotBuilder::new();
        // the scratch carries no state between graphs
        assert_eq!(builder.build(&g), CsrGraph::from_graph_reference(&g));
        assert_eq!(builder.build(&h), CsrGraph::from_graph_reference(&h));
        // in-place rebuild overwrites every column
        let mut out = builder.build(&h);
        builder.build_into(&g, &mut out);
        assert_eq!(out, CsrGraph::from_graph_reference(&g));
        assert!(out.heap_bytes() > 0);
    }

    #[test]
    fn parallel_database_build_matches_serial() {
        let g = graph();
        let h = LabeledGraph::from_unlabeled_edges(&[l(3), l(4), l(3)], [(0u32, 1u32), (1, 2)]).unwrap();
        let graphs: Vec<LabeledGraph> =
            (0..13).map(|i| if i % 3 == 0 { g.clone() } else { h.clone() }).collect();
        let db = crate::transaction::GraphDatabase::from_graphs(graphs);
        let serial = CsrSnapshot::from_database(&db);
        for threads in [1, 2, 8] {
            assert_eq!(CsrSnapshot::from_database_with_threads(&db, threads), serial);
        }
        assert!(serial.heap_bytes() > 0);
    }

    #[test]
    fn refreeze_matches_full_rebuild() {
        let g = graph();
        let h = LabeledGraph::from_unlabeled_edges(&[l(3), l(4), l(3)], [(0u32, 1u32), (1, 2)]).unwrap();
        let mut db = crate::transaction::GraphDatabase::from_graphs(vec![g.clone(), h.clone(), g.clone()]);
        let mut snapshot = CsrSnapshot::from_database(&db);
        let mut builder = SnapshotBuilder::new();

        // mutate transaction 1 and re-freeze only it
        db.add_edge_in(1, VertexId(0), VertexId(2), l(9)).unwrap();
        snapshot.refreeze_transaction(1, &db[1], &mut builder);
        assert_eq!(snapshot, CsrSnapshot::from_database(&db), "dirty refreeze must equal a full rebuild");

        // append a transaction
        let t = db.add_transaction(h.clone());
        let idx = snapshot.push_transaction(&db[t], &mut builder);
        assert_eq!(idx, t);
        assert_eq!(snapshot, CsrSnapshot::from_database(&db));

        // tombstone a transaction to empty and re-freeze it
        db.remove_transaction(0).unwrap();
        snapshot.refreeze_transaction(0, &db[0], &mut builder);
        assert_eq!(snapshot.graph(0).vertex_count(), 0);
        assert_eq!(snapshot, CsrSnapshot::from_database(&db));
    }

    #[test]
    #[should_panic(expected = "single-graph snapshot")]
    fn push_transaction_rejects_single_graph_setting() {
        let g = graph();
        let mut s = CsrSnapshot::from_graph(&g);
        let mut builder = SnapshotBuilder::new();
        s.push_transaction(&g, &mut builder);
    }

    #[test]
    fn snapshot_collection() {
        let g = graph();
        let s = CsrSnapshot::from_graph(&g);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(!s.is_transactional());
        assert!(s.graph(0).parity_with(&g));
        let db = crate::transaction::GraphDatabase::from_graphs(vec![g.clone(), g.clone()]);
        let s2 = CsrSnapshot::from_database(&db);
        assert_eq!(s2.len(), 2);
        assert!(s2.is_transactional());
        // the setting survives the freeze even for a one-transaction database
        let one = crate::transaction::GraphDatabase::from_graphs(vec![g.clone()]);
        assert!(CsrSnapshot::from_database(&one).is_transactional());
        assert_eq!(s2.iter().count(), 2);
        assert!(s2.iter().all(|(_, c)| c.parity_with(&g)));
    }
}
