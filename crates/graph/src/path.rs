//! Simple paths, the lexicographical path order (Definition 2) and the total
//! path order (Definition 3).
//!
//! A [`Path`] is a sequence of *physical vertex ids* of some host graph; its
//! length is the number of edges (`|vertices| - 1`).  Paths are always simple
//! (all vertices distinct); [`Path::new_checked`] validates simplicity and
//! adjacency against a host graph.

use crate::error::{GraphError, GraphResult};
use crate::graph::{LabeledGraph, VertexId};
use crate::label::{compare_label_seq, Label};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashSet;
use std::fmt;

/// A simple path represented as its sequence of physical vertex ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    vertices: Vec<VertexId>,
}

impl Path {
    /// Creates a path from a vertex sequence without validation.
    ///
    /// The caller must guarantee the sequence is a simple path of the host
    /// graph; use [`Path::new_checked`] when in doubt.
    pub fn new_unchecked(vertices: Vec<VertexId>) -> Self {
        Path { vertices }
    }

    /// Creates a single-vertex path of length zero.
    pub fn single(v: VertexId) -> Self {
        Path { vertices: vec![v] }
    }

    /// Creates a path and validates against `graph` that (a) it is nonempty,
    /// (b) all vertices are distinct, and (c) consecutive vertices are
    /// adjacent.
    pub fn new_checked(graph: &LabeledGraph, vertices: Vec<VertexId>) -> GraphResult<Self> {
        if vertices.is_empty() {
            return Err(GraphError::InvalidPath { reason: "empty vertex sequence".into() });
        }
        let mut seen = HashSet::with_capacity(vertices.len());
        for &v in &vertices {
            if v.index() >= graph.vertex_count() {
                return Err(GraphError::VertexOutOfBounds { vertex: v.0, len: graph.vertex_count() });
            }
            if !seen.insert(v) {
                return Err(GraphError::InvalidPath {
                    reason: format!("vertex {} repeated; paths must be simple", v.0),
                });
            }
        }
        for w in vertices.windows(2) {
            if !graph.has_edge(w[0], w[1]) {
                return Err(GraphError::InvalidPath {
                    reason: format!("vertices {} and {} are not adjacent", w[0].0, w[1].0),
                });
            }
        }
        Ok(Path { vertices })
    }

    /// The vertex sequence.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Path length in edges (`#vertices - 1`).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }

    /// True for the degenerate empty path (no vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The head vertex `v_H` (first vertex).
    pub fn head(&self) -> VertexId {
        self.vertices[0]
    }

    /// The tail vertex `v_T` (last vertex).
    pub fn tail(&self) -> VertexId {
        *self.vertices.last().expect("path has at least one vertex")
    }

    /// True if `v` lies on the path.
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.contains(&v)
    }

    /// Position of `v` along the path (0-based), if present.
    pub fn position(&self, v: VertexId) -> Option<usize> {
        self.vertices.iter().position(|&x| x == v)
    }

    /// Returns the label sequence of the path under `graph`'s label function.
    pub fn label_seq(&self, graph: &LabeledGraph) -> Vec<Label> {
        self.vertices.iter().map(|&v| graph.label(v)).collect()
    }

    /// Returns the reversed path.
    pub fn reversed(&self) -> Path {
        let mut vs = self.vertices.clone();
        vs.reverse();
        Path { vertices: vs }
    }

    /// Returns the path oriented so that it is the smaller of itself and its
    /// reverse under the total path order of Definition 3.  Frequent-path
    /// mining uses this to avoid generating each undirected path twice.
    pub fn oriented(&self, graph: &LabeledGraph) -> Path {
        let rev = self.reversed();
        match total_path_order(graph, self, &rev) {
            Ordering::Greater => rev,
            _ => self.clone(),
        }
    }

    /// Concatenates `self` and `other` when the tail of `self` is adjacent in
    /// `graph` to the head of `other` and the vertex sets are disjoint.
    /// Returns `None` otherwise.  The resulting path has length
    /// `self.len() + other.len() + 1`.
    pub fn concat(&self, graph: &LabeledGraph, other: &Path) -> Option<Path> {
        if self.is_empty() || other.is_empty() {
            return None;
        }
        if !graph.has_edge(self.tail(), other.head()) {
            return None;
        }
        let set: HashSet<VertexId> = self.vertices.iter().copied().collect();
        if other.vertices.iter().any(|v| set.contains(v)) {
            return None;
        }
        let mut vs = self.vertices.clone();
        vs.extend_from_slice(&other.vertices);
        Some(Path { vertices: vs })
    }

    /// Merges two partially overlapping paths when the suffix of `self` of
    /// length `overlap` (in vertices) equals the prefix of `other`.  This is
    /// the merge operation of DiamMine Step II: a path of length `l` is
    /// obtained by overlapping two length-`2^k` paths.
    ///
    /// `overlap` counts **vertices** shared; the merged path length in edges
    /// is `self.len() + other.len() - (overlap - 1)`.
    pub fn merge_overlapping(&self, other: &Path, overlap: usize) -> Option<Path> {
        if overlap == 0 || overlap > self.vertices.len() || overlap > other.vertices.len() {
            return None;
        }
        let suffix = &self.vertices[self.vertices.len() - overlap..];
        let prefix = &other.vertices[..overlap];
        if suffix != prefix {
            return None;
        }
        let mut vs = self.vertices.clone();
        vs.extend_from_slice(&other.vertices[overlap..]);
        // resulting sequence must still be simple
        let set: HashSet<VertexId> = vs.iter().copied().collect();
        if set.len() != vs.len() {
            return None;
        }
        Some(Path { vertices: vs })
    }

    /// Returns the sub-path consisting of the first `k + 1` vertices
    /// (a prefix of length `k` edges), or `None` if the path is too short.
    pub fn prefix(&self, k: usize) -> Option<Path> {
        if k + 1 > self.vertices.len() {
            return None;
        }
        Some(Path { vertices: self.vertices[..k + 1].to_vec() })
    }

    /// Returns the sub-path consisting of the last `k + 1` vertices
    /// (a suffix of length `k` edges), or `None` if the path is too short.
    pub fn suffix(&self, k: usize) -> Option<Path> {
        if k + 1 > self.vertices.len() {
            return None;
        }
        Some(Path { vertices: self.vertices[self.vertices.len() - k - 1..].to_vec() })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<String> = self.vertices.iter().map(|v| v.0.to_string()).collect();
        write!(f, "[{}]", ids.join(" - "))
    }
}

/// Lexicographical path order `⊑_L` of Definition 2: shorter paths first,
/// then label-sequence comparison.
pub fn lexicographic_path_order(graph: &LabeledGraph, a: &Path, b: &Path) -> Ordering {
    let la = a.label_seq(graph);
    let lb = b.label_seq(graph);
    compare_label_seq(&la, &lb)
}

/// Total path order `≺` of Definition 3: lexicographic order first, breaking
/// ties among lexicographically equal paths by the physical vertex-id
/// sequences.
pub fn total_path_order(graph: &LabeledGraph, a: &Path, b: &Path) -> Ordering {
    match lexicographic_path_order(graph, a, b) {
        Ordering::Equal => a.vertices().cmp(b.vertices()),
        other => other,
    }
}

/// Enumerates every simple path of exactly `len` edges in `graph`, calling
/// `visit` for each (paths are produced in both directions; callers that need
/// undirected-unique paths should canonicalize with [`Path::oriented`]).
///
/// `limit` optionally bounds the number of paths visited (useful in tests on
/// dense graphs).  Returns the number of paths visited.
pub fn enumerate_simple_paths<F>(
    graph: &LabeledGraph,
    len: usize,
    limit: Option<usize>,
    mut visit: F,
) -> usize
where
    F: FnMut(&Path),
{
    let mut count = 0usize;
    let mut stack: Vec<VertexId> = Vec::with_capacity(len + 1);
    let mut on_stack = vec![false; graph.vertex_count()];
    for start in graph.vertices() {
        if limit.map(|l| count >= l).unwrap_or(false) {
            break;
        }
        stack.push(start);
        on_stack[start.index()] = true;
        dfs_paths(graph, len, limit, &mut stack, &mut on_stack, &mut count, &mut visit);
        on_stack[start.index()] = false;
        stack.pop();
    }
    count
}

fn dfs_paths<F>(
    graph: &LabeledGraph,
    len: usize,
    limit: Option<usize>,
    stack: &mut Vec<VertexId>,
    on_stack: &mut [bool],
    count: &mut usize,
    visit: &mut F,
) where
    F: FnMut(&Path),
{
    if limit.map(|l| *count >= l).unwrap_or(false) {
        return;
    }
    if stack.len() == len + 1 {
        let p = Path::new_unchecked(stack.clone());
        visit(&p);
        *count += 1;
        return;
    }
    let last = *stack.last().expect("stack nonempty");
    let neighbors: Vec<VertexId> = graph.neighbor_ids(last).collect();
    for n in neighbors {
        if on_stack[n.index()] {
            continue;
        }
        stack.push(n);
        on_stack[n.index()] = true;
        dfs_paths(graph, len, limit, stack, on_stack, count, visit);
        on_stack[n.index()] = false;
        stack.pop();
        if limit.map(|l| *count >= l).unwrap_or(false) {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 5-vertex path graph a-b-c-d-e plus a chord (1,3).
    fn host() -> LabeledGraph {
        LabeledGraph::from_unlabeled_edges(
            &[Label(0), Label(1), Label(2), Label(3), Label(4)],
            [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)],
        )
        .unwrap()
    }

    #[test]
    fn checked_construction_validates() {
        let g = host();
        assert!(Path::new_checked(&g, vec![VertexId(0), VertexId(1), VertexId(2)]).is_ok());
        // not adjacent
        assert!(Path::new_checked(&g, vec![VertexId(0), VertexId(2)]).is_err());
        // repeated vertex
        assert!(Path::new_checked(&g, vec![VertexId(0), VertexId(1), VertexId(0)]).is_err());
        // empty
        assert!(Path::new_checked(&g, vec![]).is_err());
        // out of bounds
        assert!(Path::new_checked(&g, vec![VertexId(42)]).is_err());
    }

    #[test]
    fn length_head_tail() {
        let p = Path::new_unchecked(vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.head(), VertexId(0));
        assert_eq!(p.tail(), VertexId(2));
        assert!(p.contains(VertexId(1)));
        assert_eq!(p.position(VertexId(2)), Some(2));
        assert_eq!(p.position(VertexId(9)), None);
    }

    #[test]
    fn single_vertex_path_has_length_zero() {
        let p = Path::single(VertexId(3));
        assert_eq!(p.len(), 0);
        assert_eq!(p.head(), p.tail());
    }

    #[test]
    fn lexicographic_order_shorter_first() {
        let g = host();
        let short = Path::new_unchecked(vec![VertexId(4), VertexId(3)]);
        let long = Path::new_unchecked(vec![VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(lexicographic_path_order(&g, &short, &long), Ordering::Less);
    }

    #[test]
    fn lexicographic_order_uses_labels() {
        let g = host();
        // labels: 0->0, 1->1, ...; path [0,1] labels (0,1) < path [1,2] labels (1,2)
        let a = Path::new_unchecked(vec![VertexId(0), VertexId(1)]);
        let b = Path::new_unchecked(vec![VertexId(1), VertexId(2)]);
        assert_eq!(lexicographic_path_order(&g, &a, &b), Ordering::Less);
    }

    #[test]
    fn total_order_breaks_ties_by_ids() {
        // graph with identical labels so lexicographic order is a tie
        let g =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(0), Label(0)], [(0, 1), (1, 2)]).unwrap();
        let a = Path::new_unchecked(vec![VertexId(0), VertexId(1)]);
        let b = Path::new_unchecked(vec![VertexId(1), VertexId(2)]);
        assert_eq!(lexicographic_path_order(&g, &a, &b), Ordering::Equal);
        assert_eq!(total_path_order(&g, &a, &b), Ordering::Less);
        assert_eq!(total_path_order(&g, &b, &a), Ordering::Greater);
        assert_eq!(total_path_order(&g, &a, &a), Ordering::Equal);
    }

    #[test]
    fn oriented_picks_smaller_direction() {
        let g = host();
        let p = Path::new_unchecked(vec![VertexId(4), VertexId(3), VertexId(2)]);
        let o = p.oriented(&g);
        // reversed has label seq (2,3,4) < (4,3,2)
        assert_eq!(o.vertices(), &[VertexId(2), VertexId(3), VertexId(4)]);
        // orienting an already canonical path is a no-op
        assert_eq!(o.oriented(&g).vertices(), o.vertices());
    }

    #[test]
    fn concat_requires_bridge_edge_and_disjointness() {
        let g = host();
        let a = Path::new_unchecked(vec![VertexId(0), VertexId(1)]);
        let b = Path::new_unchecked(vec![VertexId(2), VertexId(3)]);
        let c = a.concat(&g, &b).expect("1-2 edge exists");
        assert_eq!(c.len(), 3);
        assert_eq!(c.vertices(), &[VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);

        // no bridge edge 1-4
        let d = Path::new_unchecked(vec![VertexId(4)]);
        assert!(a.concat(&g, &d).is_none());

        // overlapping vertex sets rejected
        let e = Path::new_unchecked(vec![VertexId(3), VertexId(1)]);
        assert!(a.concat(&g, &e).is_none());
    }

    #[test]
    fn merge_overlapping_builds_longer_path() {
        let a = Path::new_unchecked(vec![VertexId(0), VertexId(1), VertexId(2)]);
        let b = Path::new_unchecked(vec![VertexId(1), VertexId(2), VertexId(3)]);
        let m = a.merge_overlapping(&b, 2).expect("suffix [1,2] == prefix [1,2]");
        assert_eq!(m.vertices(), &[VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(m.len(), 3);

        // wrong overlap size
        assert!(a.merge_overlapping(&b, 1).is_none());
        // overlap larger than path
        assert!(a.merge_overlapping(&b, 4).is_none());
        // non-simple result rejected
        let c = Path::new_unchecked(vec![VertexId(1), VertexId(2), VertexId(0)]);
        assert!(a.merge_overlapping(&c, 2).is_none());
    }

    #[test]
    fn prefix_and_suffix() {
        let p = Path::new_unchecked(vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(p.prefix(2).unwrap().vertices(), &[VertexId(0), VertexId(1), VertexId(2)]);
        assert_eq!(p.suffix(2).unwrap().vertices(), &[VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(p.prefix(3).unwrap().vertices(), p.vertices());
        assert!(p.prefix(4).is_none());
        assert!(p.suffix(9).is_none());
    }

    #[test]
    fn enumerate_simple_paths_counts() {
        // path graph 0-1-2: simple paths of length 2 are [0,1,2] and [2,1,0]
        let g = LabeledGraph::from_unlabeled_edges(&[Label(0); 3], [(0, 1), (1, 2)]).unwrap();
        let mut found = Vec::new();
        let n = enumerate_simple_paths(&g, 2, None, |p| found.push(p.clone()));
        assert_eq!(n, 2);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn enumerate_simple_paths_respects_limit() {
        let g = host();
        let n = enumerate_simple_paths(&g, 1, Some(3), |_| {});
        assert_eq!(n, 3);
    }

    #[test]
    fn display_formats_ids() {
        let p = Path::new_unchecked(vec![VertexId(3), VertexId(7)]);
        assert_eq!(p.to_string(), "[3 - 7]");
    }
}
