//! The read-only graph abstraction shared by every mining consumer.
//!
//! [`GraphView`] is the trait both graph representations implement:
//!
//! * [`LabeledGraph`] — the mutable adjacency-list form used during
//!   construction and for small patterns;
//! * [`CsrGraph`] — the immutable columnar snapshot the miners and the
//!   minimal-pattern index sweep at serving time.
//!
//! Algorithms that only *read* a graph (subgraph isomorphism, BFS, occurrence
//! joins) are generic over `GraphView`, so the same monomorphized code runs
//! against either representation.  [`GraphRef`] is the zero-cost dynamic
//! choice between the two — a `Copy` enum with inlined match dispatch — used
//! where the representation is picked at run time (a mining configuration
//! knob) rather than at compile time.

use crate::csr::CsrGraph;
use crate::graph::{Edge, LabeledGraph, VertexId};
use crate::label::Label;

/// A read-only view of an undirected, vertex- and edge-labeled simple graph.
///
/// Implementations must report neighbors in ascending neighbor-id order; the
/// miners' determinism guarantees (byte-identical output for every thread
/// count *and* for every representation) rest on that shared iteration order.
pub trait GraphView {
    /// Number of vertices `|V|`.
    fn vertex_count(&self) -> usize;

    /// Number of edges `|E|`.
    fn edge_count(&self) -> usize;

    /// Label of vertex `v`.
    ///
    /// # Panics
    /// May panic when `v` is out of bounds.
    fn label(&self, v: VertexId) -> Label;

    /// Degree of vertex `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Iterates over `(neighbor, edge label)` pairs of `v` in ascending
    /// neighbor-id order.
    fn neighbors(&self, v: VertexId) -> Neighbors<'_>;

    /// True when the edge `(u, v)` exists (out-of-bounds endpoints yield
    /// `false`).
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool;

    /// Label of edge `(u, v)`, or `None` when absent.
    fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label>;

    /// Iterates over all vertex ids `0..|V|`.
    fn vertices(&self) -> Vertices {
        Vertices { next: 0, end: self.vertex_count() as u32 }
    }

    /// Iterates over all edges, each reported once with `u < v`, in the scan
    /// order `(u ascending, v ascending)` shared by both representations.
    fn edges(&self) -> EdgesIter<'_, Self>
    where
        Self: Sized,
    {
        EdgesIter { graph: self, vertex: 0, inner: None }
    }
}

/// Iterator over `(neighbor, edge label)` pairs — the concrete type behind
/// [`GraphView::neighbors`], covering both storage layouts.
#[derive(Debug, Clone)]
pub enum Neighbors<'a> {
    /// Adjacency-list layout: one `(neighbor, label)` pair per entry.
    Adjacency(std::slice::Iter<'a, (VertexId, Label)>),
    /// CSR layout: parallel neighbor and edge-label columns.
    Columns {
        /// Neighbor column slice.
        ids: &'a [VertexId],
        /// Edge-label column slice, same length as `ids`.
        labels: &'a [Label],
        /// Cursor into both columns.
        at: usize,
    },
}

impl Iterator for Neighbors<'_> {
    type Item = (VertexId, Label);

    #[inline]
    fn next(&mut self) -> Option<(VertexId, Label)> {
        match self {
            Neighbors::Adjacency(it) => it.next().copied(),
            Neighbors::Columns { ids, labels, at } => {
                let i = *at;
                if i < ids.len() {
                    *at = i + 1;
                    Some((ids[i], labels[i]))
                } else {
                    None
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            Neighbors::Adjacency(it) => it.len(),
            Neighbors::Columns { ids, at, .. } => ids.len() - at,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

/// Iterator over all vertex ids of a view.
#[derive(Debug, Clone)]
pub struct Vertices {
    next: u32,
    end: u32,
}

impl Iterator for Vertices {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.next < self.end {
            let v = VertexId(self.next);
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Vertices {}

/// Iterator over all edges of a view (each once, `u < v`), in the shared
/// scan order.
#[derive(Debug)]
pub struct EdgesIter<'a, G: GraphView> {
    graph: &'a G,
    vertex: u32,
    inner: Option<Neighbors<'a>>,
}

impl<G: GraphView> Iterator for EdgesIter<'_, G> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        loop {
            if let Some(inner) = &mut self.inner {
                let u = VertexId(self.vertex);
                for (v, label) in inner.by_ref() {
                    if u < v {
                        return Some(Edge { u, v, label });
                    }
                }
                self.inner = None;
                self.vertex += 1;
            }
            if (self.vertex as usize) >= self.graph.vertex_count() {
                return None;
            }
            self.inner = Some(self.graph.neighbors(VertexId(self.vertex)));
        }
    }
}

/// A borrowed graph in either representation: the run-time counterpart of the
/// `GraphView` generic.  `Copy`, two words wide, with `#[inline]` match
/// dispatch on every accessor.
#[derive(Debug, Clone, Copy)]
pub enum GraphRef<'a> {
    /// Adjacency-list representation.
    Adjacency(&'a LabeledGraph),
    /// Columnar CSR snapshot.
    Csr(&'a CsrGraph),
}

impl<'a> GraphRef<'a> {
    /// The underlying CSR snapshot, when this reference is CSR-backed.
    #[inline]
    pub fn as_csr(self) -> Option<&'a CsrGraph> {
        match self {
            GraphRef::Adjacency(_) => None,
            GraphRef::Csr(csr) => Some(csr),
        }
    }

    /// Neighbor iterator carrying the *full* borrow lifetime `'a` (the trait
    /// method can only tie the iterator to `&self`).
    #[inline]
    pub fn neighbors(self, v: VertexId) -> Neighbors<'a> {
        match self {
            GraphRef::Adjacency(g) => Neighbors::Adjacency(g.neighbor_slice(v).iter()),
            GraphRef::Csr(g) => g.neighbors_at(v),
        }
    }

    /// Vertex label (see [`GraphView::label`]).
    #[inline]
    pub fn label(self, v: VertexId) -> Label {
        match self {
            GraphRef::Adjacency(g) => g.label(v),
            GraphRef::Csr(g) => g.label(v),
        }
    }

    /// Edge label lookup (see [`GraphView::edge_label`]).
    #[inline]
    pub fn edge_label(self, u: VertexId, v: VertexId) -> Option<Label> {
        match self {
            GraphRef::Adjacency(g) => g.edge_label(u, v),
            GraphRef::Csr(g) => g.edge_label(u, v),
        }
    }

    /// Edge existence test (see [`GraphView::has_edge`]).
    #[inline]
    pub fn has_edge(self, u: VertexId, v: VertexId) -> bool {
        match self {
            GraphRef::Adjacency(g) => g.has_edge(u, v),
            GraphRef::Csr(g) => g.has_edge(u, v),
        }
    }
}

impl GraphView for GraphRef<'_> {
    #[inline]
    fn vertex_count(&self) -> usize {
        match self {
            GraphRef::Adjacency(g) => g.vertex_count(),
            GraphRef::Csr(g) => g.vertex_count(),
        }
    }

    #[inline]
    fn edge_count(&self) -> usize {
        match self {
            GraphRef::Adjacency(g) => g.edge_count(),
            GraphRef::Csr(g) => g.edge_count(),
        }
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        (*self).label(v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        match self {
            GraphRef::Adjacency(g) => g.degree(v),
            GraphRef::Csr(g) => g.degree(v),
        }
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        (*self).neighbors(v)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        (*self).has_edge(u, v)
    }

    #[inline]
    fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label> {
        (*self).edge_label(u, v)
    }
}

impl<G: GraphView + ?Sized> GraphView for &G {
    #[inline]
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }

    #[inline]
    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        (**self).label(v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        (**self).degree(v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        (**self).neighbors(v)
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        (**self).has_edge(u, v)
    }

    #[inline]
    fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label> {
        (**self).edge_label(u, v)
    }
}

impl GraphView for LabeledGraph {
    #[inline]
    fn vertex_count(&self) -> usize {
        LabeledGraph::vertex_count(self)
    }

    #[inline]
    fn edge_count(&self) -> usize {
        LabeledGraph::edge_count(self)
    }

    #[inline]
    fn label(&self, v: VertexId) -> Label {
        LabeledGraph::label(self, v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        LabeledGraph::degree(self, v)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> Neighbors<'_> {
        Neighbors::Adjacency(self.neighbor_slice(v).iter())
    }

    #[inline]
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        LabeledGraph::has_edge(self, u, v)
    }

    #[inline]
    fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label> {
        LabeledGraph::edge_label(self, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> LabeledGraph {
        LabeledGraph::from_parts(
            &[Label(0), Label(1), Label(0), Label(2)],
            [(0u32, 1u32, Label(5)), (1, 2, Label(6)), (0, 2, Label(5)), (2, 3, Label(7))],
        )
        .unwrap()
    }

    #[test]
    fn trait_edges_match_inherent_edges() {
        let g = graph();
        let via_trait: Vec<Edge> = GraphView::edges(&g).collect();
        let via_inherent: Vec<Edge> = g.edges().collect();
        assert_eq!(via_trait, via_inherent);
    }

    #[test]
    fn graph_ref_delegates() {
        let g = graph();
        let r = GraphRef::Adjacency(&g);
        assert_eq!(GraphView::vertex_count(&r), 4);
        assert_eq!(GraphView::edge_count(&r), 4);
        assert_eq!(r.label(VertexId(3)), Label(2));
        assert_eq!(GraphView::degree(&r, VertexId(2)), 3);
        assert!(r.has_edge(VertexId(0), VertexId(2)));
        assert_eq!(r.edge_label(VertexId(2), VertexId(3)), Some(Label(7)));
        assert!(r.as_csr().is_none());
        let ns: Vec<_> = r.neighbors(VertexId(0)).collect();
        assert_eq!(ns, vec![(VertexId(1), Label(5)), (VertexId(2), Label(5))]);
    }

    #[test]
    fn vertices_iterator_is_exact() {
        let g = graph();
        let vs: Vec<VertexId> = GraphView::vertices(&g).collect();
        assert_eq!(vs.len(), 4);
        assert_eq!(GraphView::vertices(&g).len(), 4);
        assert_eq!(vs[3], VertexId(3));
    }

    #[test]
    fn neighbors_size_hint() {
        let g = graph();
        let it = GraphView::neighbors(&g, VertexId(2));
        assert_eq!(it.len(), 3);
    }
}
