//! Subgraph-isomorphism embedding enumeration (VF2-style backtracking).
//!
//! [`find_embeddings`] enumerates (up to an optional limit) all embeddings of
//! a pattern in a data graph.  The direct miner never calls this on its hot
//! path — it maintains embedding lists incrementally — but the baselines and
//! the verification utilities rely on it, and tests use it as ground truth
//! for SkinnyMine's incremental embedding maintenance.

use crate::embedding::{Embedding, EmbeddingSet};
use crate::graph::{LabeledGraph, VertexId};
use crate::view::GraphView;

/// Options controlling the embedding search.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubIsoOptions {
    /// Stop after this many embeddings have been found (None = unlimited).
    pub limit: Option<usize>,
    /// Transaction index recorded on each produced embedding.
    pub transaction: usize,
}

/// Enumerates embeddings of `pattern` in `data`.
///
/// Pattern vertices are matched in a connectivity-aware static order chosen
/// to keep the partial mapping connected, which keeps the search space small
/// for the sparse patterns of this problem domain.  The data side is generic
/// over [`GraphView`], so the same search runs against the adjacency-list
/// and CSR representations.
pub fn find_embeddings<G: GraphView>(pattern: &LabeledGraph, data: &G, opts: SubIsoOptions) -> EmbeddingSet {
    let mut out = EmbeddingSet::new();
    let transaction = opts.transaction;
    search(pattern, data, opts.limit, |mapping| {
        let vertices: Vec<VertexId> = mapping.iter().map(|m| m.expect("complete mapping")).collect();
        out.push(Embedding::in_transaction(vertices, transaction));
    });
    out
}

/// Counts embeddings **without materializing any of them**: the backtracking
/// search only increments a counter on each complete mapping.  Equivalent to
/// `find_embeddings(..).len()`, with an early-exit threshold: returns as soon
/// as `at_least` embeddings are found (if provided).
pub fn count_embeddings<G: GraphView>(pattern: &LabeledGraph, data: &G, at_least: Option<usize>) -> usize {
    let mut count = 0usize;
    search(pattern, data, at_least, |_| count += 1);
    count
}

/// Returns true if `pattern` has at least one embedding in `data`, stopping
/// the search at the first match without building an embedding.
pub fn has_embedding<G: GraphView>(pattern: &LabeledGraph, data: &G) -> bool {
    count_embeddings(pattern, data, Some(1)) >= 1
}

/// Runs the backtracking search, invoking `on_match` with the complete
/// pattern-vertex mapping for every embedding found (up to `limit`).
fn search<G: GraphView>(
    pattern: &LabeledGraph,
    data: &G,
    limit: Option<usize>,
    on_match: impl FnMut(&[Option<VertexId>]),
) {
    if pattern.vertex_count() == 0 || pattern.vertex_count() > data.vertex_count() {
        return;
    }
    let order = matching_order(pattern);
    let mut mapping: Vec<Option<VertexId>> = vec![None; pattern.vertex_count()];
    let mut used = vec![false; data.vertex_count()];
    let mut state = SearchState {
        pattern,
        data,
        order: &order,
        mapping: &mut mapping,
        used: &mut used,
        found: 0,
        limit,
        on_match,
    };
    state.recurse(0);
}

/// Chooses the order in which pattern vertices are matched: a BFS-like order
/// that keeps each new vertex adjacent to an already ordered one whenever the
/// pattern is connected, starting from a vertex of maximal degree.
///
/// Component seeds are drawn from one degree-sorted vertex list computed up
/// front (descending degree, descending id — the same vertex the previous
/// per-component `max_by_key` rescan selected), so seeding all components
/// costs one sort instead of a quadratic repeated maximum scan.
fn matching_order(pattern: &LabeledGraph) -> Vec<VertexId> {
    let n = pattern.vertex_count();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut by_degree: Vec<VertexId> = pattern.vertices().collect();
    by_degree.sort_unstable_by_key(|&v| (std::cmp::Reverse(pattern.degree(v)), std::cmp::Reverse(v.index())));
    let mut seed_cursor = 0usize;
    while order.len() < n {
        // seed: highest-degree unplaced vertex (new component)
        while placed[by_degree[seed_cursor].index()] {
            seed_cursor += 1;
        }
        let seed = by_degree[seed_cursor];
        placed[seed.index()] = true;
        order.push(seed);
        let mut frontier = vec![seed];
        while let Some(v) = frontier.pop() {
            // attach neighbors in degree-descending order for better pruning
            let mut nbrs: Vec<VertexId> = pattern.neighbor_ids(v).filter(|n| !placed[n.index()]).collect();
            nbrs.sort_by_key(|&n| std::cmp::Reverse(pattern.degree(n)));
            for n in nbrs {
                if !placed[n.index()] {
                    placed[n.index()] = true;
                    order.push(n);
                    frontier.push(n);
                }
            }
        }
    }
    order
}

struct SearchState<'a, G: GraphView, M: FnMut(&[Option<VertexId>])> {
    pattern: &'a LabeledGraph,
    data: &'a G,
    order: &'a [VertexId],
    mapping: &'a mut Vec<Option<VertexId>>,
    used: &'a mut Vec<bool>,
    found: usize,
    limit: Option<usize>,
    on_match: M,
}

impl<G: GraphView, M: FnMut(&[Option<VertexId>])> SearchState<'_, G, M> {
    fn done(&self) -> bool {
        self.limit.map(|l| self.found >= l).unwrap_or(false)
    }

    fn recurse(&mut self, depth: usize) {
        if self.done() {
            return;
        }
        if depth == self.order.len() {
            self.found += 1;
            (self.on_match)(self.mapping);
            return;
        }
        let pv = self.order[depth];
        let candidates = self.candidates(pv, depth);
        for cand in candidates {
            if self.used[cand.index()] {
                continue;
            }
            if !self.feasible(pv, cand) {
                continue;
            }
            self.mapping[pv.index()] = Some(cand);
            self.used[cand.index()] = true;
            self.recurse(depth + 1);
            self.mapping[pv.index()] = None;
            self.used[cand.index()] = false;
            if self.done() {
                return;
            }
        }
    }

    /// Candidate data vertices for pattern vertex `pv`: if some neighbor of
    /// `pv` is already mapped, only the data-neighbors of its image are
    /// candidates; otherwise all data vertices with the right label.
    fn candidates(&self, pv: VertexId, _depth: usize) -> Vec<VertexId> {
        let label = self.pattern.label(pv);
        let anchored = self.pattern.neighbor_ids(pv).find_map(|n| self.mapping[n.index()]);
        match anchored {
            Some(image) => {
                self.data.neighbors(image).map(|(d, _)| d).filter(|&d| self.data.label(d) == label).collect()
            }
            None => self.data.vertices().filter(|&d| self.data.label(d) == label).collect(),
        }
    }

    /// Full feasibility: labels, degree bound, and consistency of every
    /// pattern edge incident to already-mapped vertices (including edge
    /// labels).
    fn feasible(&self, pv: VertexId, cand: VertexId) -> bool {
        if self.data.label(cand) != self.pattern.label(pv) {
            return false;
        }
        if self.data.degree(cand) < self.pattern.degree(pv) {
            return false;
        }
        for (pn, el) in self.pattern.neighbors(pv) {
            if let Some(image) = self.mapping[pn.index()] {
                if !self.data.has_edge(cand, image) {
                    return false;
                }
                if self.data.edge_label(cand, image) != Some(el) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn data_graph() -> LabeledGraph {
        // labels: a=0 b=1 c=2
        // structure:  0a - 1b - 2a - 3b - 4a   with a chord 1-3
        LabeledGraph::from_unlabeled_edges(
            &[Label(0), Label(1), Label(0), Label(1), Label(0)],
            [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)],
        )
        .unwrap()
    }

    fn edge_pattern(a: u32, b: u32) -> LabeledGraph {
        LabeledGraph::from_unlabeled_edges(&[Label(a), Label(b)], [(0, 1)]).unwrap()
    }

    #[test]
    fn single_edge_embeddings() {
        let data = data_graph();
        let p = edge_pattern(0, 1);
        let em = find_embeddings(&p, &data, SubIsoOptions::default());
        // a-b edges: (0,1) (2,1) (2,3) (4,3) -> 4 embeddings (pattern is asymmetric)
        assert_eq!(em.len(), 4);
        for e in em.iter() {
            assert!(e.is_valid(&p, &data));
        }
    }

    #[test]
    fn symmetric_pattern_counts_both_orientations() {
        let data = LabeledGraph::from_unlabeled_edges(&[Label(1), Label(1)], [(0, 1)]).unwrap();
        let p = edge_pattern(1, 1);
        let em = find_embeddings(&p, &data, SubIsoOptions::default());
        assert_eq!(em.len(), 2);
        assert_eq!(em.distinct_vertex_sets(), 1);
    }

    #[test]
    fn path_of_length_two() {
        let data = data_graph();
        // pattern a-b-a
        let p =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(0)], [(0, 1), (1, 2)]).unwrap();
        let em = find_embeddings(&p, &data, SubIsoOptions::default());
        // center b=1: pairs {0,2} in both orders -> 2; center b=3: {2,4} both orders -> 2
        assert_eq!(em.len(), 4);
        assert_eq!(em.distinct_vertex_sets(), 2);
    }

    #[test]
    fn no_embedding_for_absent_label() {
        let data = data_graph();
        let p = edge_pattern(0, 9);
        assert!(find_embeddings(&p, &data, SubIsoOptions::default()).is_empty());
        assert!(!has_embedding(&p, &data));
    }

    #[test]
    fn limit_stops_early() {
        let data = data_graph();
        let p = edge_pattern(0, 1);
        let em = find_embeddings(&p, &data, SubIsoOptions { limit: Some(2), transaction: 0 });
        assert_eq!(em.len(), 2);
        assert_eq!(count_embeddings(&p, &data, Some(1)), 1);
        assert!(has_embedding(&p, &data));
    }

    #[test]
    fn triangle_pattern_in_triangle_data() {
        let data =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(0), Label(0)], [(0, 1), (1, 2), (0, 2)])
                .unwrap();
        let p = data.clone();
        let em = find_embeddings(&p, &data, SubIsoOptions::default());
        // all 3! label-preserving mappings
        assert_eq!(em.len(), 6);
        assert_eq!(em.distinct_vertex_sets(), 1);
    }

    #[test]
    fn pattern_larger_than_data_has_no_embedding() {
        let data = edge_pattern(0, 1);
        let p = data_graph();
        assert!(find_embeddings(&p, &data, SubIsoOptions::default()).is_empty());
    }

    #[test]
    fn edge_labels_must_match() {
        let data = LabeledGraph::from_parts(&[Label(0), Label(1)], [(0u32, 1u32, Label(5))]).unwrap();
        let p_match = LabeledGraph::from_parts(&[Label(0), Label(1)], [(0u32, 1u32, Label(5))]).unwrap();
        let p_mismatch = LabeledGraph::from_parts(&[Label(0), Label(1)], [(0u32, 1u32, Label(6))]).unwrap();
        assert_eq!(count_embeddings(&p_match, &data, None), 1);
        assert_eq!(count_embeddings(&p_mismatch, &data, None), 0);
    }

    #[test]
    fn transaction_index_recorded() {
        let data = data_graph();
        let p = edge_pattern(0, 1);
        let em = find_embeddings(&p, &data, SubIsoOptions { limit: None, transaction: 7 });
        assert!(em.iter().all(|e| e.transaction == 7));
    }

    #[test]
    fn disconnected_pattern_is_handled() {
        // two isolated vertices a and b as a pattern
        let mut p = LabeledGraph::new();
        p.add_vertex(Label(0));
        p.add_vertex(Label(1));
        let data = data_graph();
        let em = find_embeddings(&p, &data, SubIsoOptions::default());
        // a-vertices {0,2,4} x b-vertices {1,3} = 6 mappings
        assert_eq!(em.len(), 6);
    }

    #[test]
    fn empty_pattern_yields_nothing() {
        let data = data_graph();
        let p = LabeledGraph::new();
        assert!(find_embeddings(&p, &data, SubIsoOptions::default()).is_empty());
    }

    #[test]
    fn matching_order_is_connected_for_connected_patterns() {
        let p = data_graph();
        let order = matching_order(&p);
        assert_eq!(order.len(), p.vertex_count());
        // each vertex after the first must touch an earlier one
        for i in 1..order.len() {
            let earlier = &order[..i];
            assert!(
                earlier.iter().any(|&e| p.has_edge(e, order[i])),
                "vertex {:?} not connected to earlier prefix",
                order[i]
            );
        }
    }
}
