//! Canonical-form subsystem: cheap order-invariant fingerprints, an
//! early-abort minimum-DFS-code engine with reusable scratch, and the
//! fingerprint → full-key dedup funnel ([`CanonSet`]) the miners build on.
//!
//! The minimum DFS code ([`crate::dfscode::min_dfs_code`]) is an exact
//! canonical form — two connected labeled graphs are isomorphic iff their
//! minimum codes are equal — but it is also by far the most expensive
//! per-pattern primitive in the mining stack.  Treating canonical forms as
//! the basis for cheap equivalence decisions (the move at the heart of
//! symbolic query-equivalence checking) suggests the funnel implemented
//! here:
//!
//! 1. **Fingerprint first** ([`fingerprint`]): an order-invariant `u64` hash
//!    of the `(vertex label, degree)` multiset, the endpoint-sorted edge
//!    triple multiset and the graph size, computed in `O(V + E)` with zero
//!    allocation.  Isomorphic graphs always collide; distinct fingerprints
//!    prove non-isomorphism, which is the overwhelmingly common verdict a
//!    dedup structure needs.
//! 2. **Full key only on collision**: a fingerprint hit falls through to the
//!    exact minimum DFS code, computed by the scratch-reusing engine
//!    ([`min_dfs_code_with`]) that recycles every traversal-state buffer
//!    across calls — zero steady-state allocation — and, gSpan-style, prunes
//!    a traversal as soon as its code prefix exceeds the best-so-far
//!    (tracked by the `early_aborts` counter) instead of materializing and
//!    comparing complete codes.
//! 3. **Memoize**: keys computed once are interned behind dense
//!    [`CanonId`]s in the [`CanonSet`], so no caller ever recomputes a key
//!    the funnel already paid for.
//!
//! [`crate::dfscode::min_dfs_code`] is retained untouched as the parity
//! reference; `canon_properties` proptests pin the engines to it.

use crate::dfscode::{cmp_dfs_edge, DfsCode, DfsEdge};
use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// The splitmix64 finalizer: a cheap, statistically strong 64-bit mixer.
/// Exposed so downstream crates (e.g. cycle-key fingerprints) hash with the
/// same deterministic primitive — no per-process randomness anywhere.
#[inline]
pub fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// An order-invariant fingerprint of a labeled graph, computed in
/// `O(V + E)` with no allocation: mixes the `(vertex label, degree)`
/// multiset, the multiset of `(endpoint key, endpoint key, edge label)`
/// triples (endpoint keys sorted, so orientation cannot matter) and the
/// vertex/edge counts.
///
/// **Contract**: isomorphic graphs always have equal fingerprints (every
/// ingredient is isomorphism-invariant, and multisets are combined with a
/// commutative sum).  Unequal fingerprints therefore prove non-isomorphism;
/// equal fingerprints mean "probably isomorphic — confirm with the full
/// canonical key".  Deterministic across runs, platforms and thread counts.
pub fn fingerprint(graph: &LabeledGraph) -> u64 {
    let mut vsum: u64 = 0;
    for v in graph.vertices() {
        vsum = vsum.wrapping_add(mix(((graph.label(v).0 as u64) << 32) | graph.degree(v) as u64));
    }
    let mut esum: u64 = 0;
    for e in graph.edges() {
        let key_u = ((graph.label(e.u).0 as u64) << 32) | graph.degree(e.u) as u64;
        let key_v = ((graph.label(e.v).0 as u64) << 32) | graph.degree(e.v) as u64;
        let (a, b) = if key_u <= key_v { (key_u, key_v) } else { (key_v, key_u) };
        esum = esum.wrapping_add(mix(mix(a)
            .wrapping_mul(3)
            .wrapping_add(mix(b))
            .wrapping_add(mix(e.label.0 as u64).rotate_left(17))));
    }
    mix(vsum ^ mix(esum) ^ (((graph.vertex_count() as u64) << 32) | graph.edge_count() as u64))
}

/// One DFS traversal state of the minimum-code search: a partial mapping
/// between DFS indices and graph vertices plus the rightmost path — the same
/// state the reference engine keeps, but with every buffer reusable.
#[derive(Debug, Default)]
struct CanonState {
    /// `dfs_to_graph[i]` = graph vertex with DFS index `i`.
    dfs_to_graph: Vec<VertexId>,
    /// `graph_to_dfs[v]` = DFS index of graph vertex `v` (`u32::MAX` if unvisited).
    graph_to_dfs: Vec<u32>,
    /// DFS indices on the rightmost path, root first.
    rightmost_path: Vec<u32>,
    /// Edges (as unordered graph vertex pairs) already used by the code.
    used_edges: Vec<(VertexId, VertexId)>,
}

impl CanonState {
    /// Resets to a single-root state over an `n`-vertex graph, reusing the
    /// buffers.
    fn reset_root(&mut self, n: usize, root: VertexId) {
        self.dfs_to_graph.clear();
        self.dfs_to_graph.push(root);
        self.graph_to_dfs.clear();
        self.graph_to_dfs.resize(n, u32::MAX);
        self.graph_to_dfs[root.index()] = 0;
        self.rightmost_path.clear();
        self.rightmost_path.push(0);
        self.used_edges.clear();
    }

    /// Copies another state into this one without fresh allocation (beyond
    /// first-use buffer growth).
    fn assign_from(&mut self, other: &CanonState) {
        self.dfs_to_graph.clear();
        self.dfs_to_graph.extend_from_slice(&other.dfs_to_graph);
        self.graph_to_dfs.clear();
        self.graph_to_dfs.extend_from_slice(&other.graph_to_dfs);
        self.rightmost_path.clear();
        self.rightmost_path.extend_from_slice(&other.rightmost_path);
        self.used_edges.clear();
        self.used_edges.extend_from_slice(&other.used_edges);
    }

    fn edge_used(&self, a: VertexId, b: VertexId) -> bool {
        self.used_edges.iter().any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }
}

/// A candidate next edge from one surviving state.
#[derive(Debug, Clone, Copy)]
struct CanonCandidate {
    edge: DfsEdge,
    state_idx: usize,
    /// Graph vertex the new DFS index maps to (forward edges only).
    new_vertex: Option<VertexId>,
    /// Graph vertex pair consumed by this edge.
    graph_edge: (VertexId, VertexId),
}

/// Reusable scratch of the early-abort minimum-DFS-code engine: the
/// traversal-state frontier, a recycled state pool and the candidate buffer,
/// plus the cumulative work counters the mining statistics surface.
///
/// All buffers grow on first use and then stay, so repeated key computations
/// over same-sized patterns perform **zero heap allocation** — the property
/// `tests/alloc_hot_loops.rs` pins on the dedup reject path.
#[derive(Debug, Default)]
pub struct CanonScratch {
    /// Current frontier of DFS states realizing the minimal prefix.
    states: Vec<CanonState>,
    /// Next frontier under construction.
    next: Vec<CanonState>,
    /// Recycled state buffers.
    pool: Vec<CanonState>,
    /// Candidates matching the current best edge.
    cands: Vec<CanonCandidate>,
    /// Completed minimum-code computations since the last counter reset.
    full_keys: u64,
    /// Traversal states pruned before completion (their code prefix exceeded
    /// the best-so-far) plus early-returned is-minimal verdicts.
    early_aborts: u64,
}

impl CanonScratch {
    /// Creates an empty scratch (buffers grow on first use, then stay).
    pub fn new() -> Self {
        CanonScratch::default()
    }

    /// `(full key computations, early-aborted traversals)` since the last
    /// [`CanonScratch::reset_counters`].
    pub fn counters(&self) -> (u64, u64) {
        (self.full_keys, self.early_aborts)
    }

    /// Zeroes the work counters (buffers are untouched).
    pub fn reset_counters(&mut self) {
        self.full_keys = 0;
        self.early_aborts = 0;
    }

    /// Recycles every live state into the pool.
    fn recycle_all(&mut self) {
        self.pool.append(&mut self.states);
        self.pool.append(&mut self.next);
        self.cands.clear();
    }

    /// Seeds one root state per vertex (the first edge selection prunes
    /// them, exactly as in the reference engine).
    fn seed(&mut self, graph: &LabeledGraph) {
        self.recycle_all();
        let n = graph.vertex_count();
        for v in graph.vertices() {
            let mut st = self.pool.pop().unwrap_or_default();
            st.reset_root(n, v);
            self.states.push(st);
        }
    }

    /// Selects the globally minimal next edge over all frontier states,
    /// keeping only the candidates that realize it, and counts every state
    /// that realizes none of them as an early-aborted traversal.
    fn select_min_edge(&mut self, graph: &LabeledGraph) -> DfsEdge {
        self.cands.clear();
        let mut best: Option<DfsEdge> = None;
        for (si, state) in self.states.iter().enumerate() {
            push_candidates(graph, state, si, &mut best, &mut self.cands);
        }
        // candidates arrive in ascending state order; count the distinct
        // surviving states to charge the dropped ones as early aborts
        let mut survivors = 0u64;
        let mut last = usize::MAX;
        for c in &self.cands {
            if c.state_idx != last {
                survivors += 1;
                last = c.state_idx;
            }
        }
        self.early_aborts += self.states.len() as u64 - survivors;
        best.expect("connected graph with remaining edges has an extension")
    }

    /// Advances every surviving candidate's state by the chosen edge.
    fn advance(&mut self, best: DfsEdge) {
        for ci in 0..self.cands.len() {
            let cand = self.cands[ci];
            let mut st = self.pool.pop().unwrap_or_default();
            st.assign_from(&self.states[cand.state_idx]);
            st.used_edges.push(cand.graph_edge);
            if best.is_forward() {
                let nv = cand.new_vertex.expect("forward edge introduces a vertex");
                st.graph_to_dfs[nv.index()] = best.to;
                st.dfs_to_graph.push(nv);
                let pos = st
                    .rightmost_path
                    .iter()
                    .position(|&d| d == best.from)
                    .expect("forward source lies on rightmost path");
                st.rightmost_path.truncate(pos + 1);
                st.rightmost_path.push(best.to);
            }
            self.next.push(st);
        }
        self.cands.clear();
        self.pool.append(&mut self.states);
        std::mem::swap(&mut self.states, &mut self.next);
    }
}

/// Enumerates the admissible next edges of one state (gSpan growth rules:
/// backward from the rightmost vertex, then forward from rightmost-path
/// vertices), keeping only candidates that match or improve `best`.
fn push_candidates(
    graph: &LabeledGraph,
    state: &CanonState,
    state_idx: usize,
    best: &mut Option<DfsEdge>,
    cands: &mut Vec<CanonCandidate>,
) {
    let mut consider = |cand: CanonCandidate| match best {
        None => {
            *best = Some(cand.edge);
            cands.clear();
            cands.push(cand);
        }
        Some(b) => match cmp_dfs_edge(&cand.edge, b) {
            Ordering::Less => {
                *best = Some(cand.edge);
                cands.clear();
                cands.push(cand);
            }
            Ordering::Equal => cands.push(cand),
            Ordering::Greater => {}
        },
    };
    let rm_idx = *state.rightmost_path.last().expect("rightmost path nonempty");
    let rm_vertex = state.dfs_to_graph[rm_idx as usize];
    // backward edges: rightmost vertex -> a vertex on the rightmost path
    for &anc_idx in &state.rightmost_path {
        if anc_idx == rm_idx {
            continue;
        }
        let anc_vertex = state.dfs_to_graph[anc_idx as usize];
        if graph.has_edge(rm_vertex, anc_vertex) && !state.edge_used(rm_vertex, anc_vertex) {
            consider(CanonCandidate {
                edge: DfsEdge {
                    from: rm_idx,
                    to: anc_idx,
                    from_label: graph.label(rm_vertex),
                    edge_label: graph.edge_label(rm_vertex, anc_vertex).unwrap_or(Label::DEFAULT_EDGE),
                    to_label: graph.label(anc_vertex),
                },
                state_idx,
                new_vertex: None,
                graph_edge: (rm_vertex, anc_vertex),
            });
        }
    }
    // forward edges: from any rightmost-path vertex to an unvisited vertex
    let next_idx = state.dfs_to_graph.len() as u32;
    for &src_idx in state.rightmost_path.iter() {
        let src_vertex = state.dfs_to_graph[src_idx as usize];
        for (nbr, el) in graph.neighbors(src_vertex) {
            if state.graph_to_dfs[nbr.index()] != u32::MAX {
                continue;
            }
            consider(CanonCandidate {
                edge: DfsEdge {
                    from: src_idx,
                    to: next_idx,
                    from_label: graph.label(src_vertex),
                    edge_label: el,
                    to_label: graph.label(nbr),
                },
                state_idx,
                new_vertex: Some(nbr),
                graph_edge: (src_vertex, nbr),
            });
        }
    }
}

/// Computes the minimum DFS code of a connected labeled graph into a
/// caller-provided code buffer, reusing every traversal buffer in `scratch`
/// — zero heap allocation once warm.  Byte-identical to
/// [`crate::dfscode::min_dfs_code`] (proptest-pinned parity).
pub fn min_dfs_code_into(graph: &LabeledGraph, scratch: &mut CanonScratch, out: &mut DfsCode) {
    out.edges.clear();
    if graph.edge_count() == 0 {
        return;
    }
    scratch.full_keys += 1;
    scratch.seed(graph);
    for _ in 0..graph.edge_count() {
        let best = scratch.select_min_edge(graph);
        out.push(best);
        scratch.advance(best);
    }
    scratch.recycle_all();
}

/// [`min_dfs_code_into`] returning an owned code.
pub fn min_dfs_code_with(graph: &LabeledGraph, scratch: &mut CanonScratch) -> DfsCode {
    let mut out = DfsCode::new();
    min_dfs_code_into(graph, scratch, &mut out);
    out
}

/// Early-abort is-minimal check: decides whether `code` is the minimum DFS
/// code of `graph` (which `code` must validly describe) **without**
/// materializing the full minimum code.  The frontier construction runs step
/// by step; the moment the constructed minimal edge is smaller than `code`'s
/// edge at that position the verdict is `false` and the traversal aborts —
/// on non-minimal codes that almost always happens on the first edge.
/// Agrees with [`crate::dfscode::is_min_code`] (proptest-pinned).
pub fn is_minimal_graph_code_with(graph: &LabeledGraph, code: &DfsCode, scratch: &mut CanonScratch) -> bool {
    if code.len() != graph.edge_count() {
        return false;
    }
    if code.is_empty() {
        return true;
    }
    scratch.seed(graph);
    for step in 0..graph.edge_count() {
        let best = scratch.select_min_edge(graph);
        match cmp_dfs_edge(&best, &code.edges[step]) {
            Ordering::Less => {
                // a strictly smaller code exists: abort without finishing
                scratch.early_aborts += 1;
                scratch.recycle_all();
                return false;
            }
            // the minimum over *all* traversals can never exceed a valid
            // code of the same graph; a Greater verdict means `code` does
            // not describe `graph`
            Ordering::Greater => {
                scratch.recycle_all();
                return false;
            }
            Ordering::Equal => {}
        }
        scratch.advance(best);
    }
    scratch.recycle_all();
    true
}

/// [`is_minimal_graph_code_with`] on the graph the code itself describes —
/// the drop-in early-abort form of [`crate::dfscode::is_min_code`].
pub fn is_minimal_with(code: &DfsCode, scratch: &mut CanonScratch) -> bool {
    if code.is_empty() {
        return true;
    }
    let g = code.to_graph();
    is_minimal_graph_code_with(&g, code, scratch)
}

/// Dense id of an interned canonical form inside one [`CanonSet`].
///
/// Ids are assigned in insertion order, so they are deterministic for any
/// deterministic insertion sequence; patterns carry them in place of owned
/// `DfsCode` keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CanonId(pub u32);

/// Work counters of the canonical-form funnel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CanonStats {
    /// Inserts whose fingerprint was already present (and therefore had to
    /// fall through to a full-key comparison).
    pub fingerprint_hits: u64,
    /// Full minimum-DFS-code computations performed.
    pub full_keys: u64,
    /// DFS traversals pruned before completion.
    pub early_aborts: u64,
}

impl CanonStats {
    /// Component-wise sum.
    pub fn merged(self, other: CanonStats) -> CanonStats {
        CanonStats {
            fingerprint_hits: self.fingerprint_hits + other.fingerprint_hits,
            full_keys: self.full_keys + other.full_keys,
            early_aborts: self.early_aborts + other.early_aborts,
        }
    }
}

/// One interned isomorphism class.
#[derive(Debug)]
struct CanonEntry {
    /// The class fingerprint.
    fingerprint: u64,
    /// Next entry sharing the fingerprint (`u32::MAX` terminates the chain).
    next: u32,
    /// The memoized full canonical key — computed lazily, on the first
    /// fingerprint collision that needs it.
    key: Option<DfsCode>,
    /// The class representative, retained only until `key` is materialized.
    graph: Option<LabeledGraph>,
}

const NO_ENTRY: u32 = u32::MAX;

/// A deduplicating set of graphs-up-to-isomorphism built on the
/// fingerprint → memoized-key funnel: [`CanonSet::insert`] answers "is this
/// graph isomorphic to anything already inserted?" and interns new classes
/// behind dense [`CanonId`]s.
///
/// The common case — a distinct new pattern — costs one `O(V + E)`
/// fingerprint and **no canonical-key computation at all**.  Only fingerprint
/// collisions (isomorphic duplicates, plus rare hash coincidences) pay for
/// full keys, and every key computed is memoized on its entry, never
/// recomputed.  With warm scratch buffers a duplicate rejection performs
/// zero heap allocation.
#[derive(Debug, Default)]
pub struct CanonSet {
    scratch: CanonScratch,
    /// Reusable key buffer for the candidate graph of one insert.
    code_buf: DfsCode,
    entries: Vec<CanonEntry>,
    /// Fingerprint → head of the entry chain.
    buckets: HashMap<u64, u32>,
    fingerprint_hits: u64,
}

impl CanonSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        CanonSet::default()
    }

    /// Number of interned isomorphism classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears the interned classes and zeroes the work counters, keeping
    /// every buffer allocation for reuse.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.buckets.clear();
        self.fingerprint_hits = 0;
        self.scratch.reset_counters();
    }

    /// Work counters since the last [`CanonSet::reset`].
    pub fn stats(&self) -> CanonStats {
        let (full_keys, early_aborts) = self.scratch.counters();
        CanonStats { fingerprint_hits: self.fingerprint_hits, full_keys, early_aborts }
    }

    /// The fingerprint of an interned class.
    pub fn fingerprint_of(&self, id: CanonId) -> u64 {
        self.entries[id.0 as usize].fingerprint
    }

    /// The memoized canonical key of an interned class, if the funnel ever
    /// had to compute it (a class whose fingerprint never collided keeps
    /// `None` — that is the saving).
    pub fn key_of(&self, id: CanonId) -> Option<&DfsCode> {
        self.entries[id.0 as usize].key.as_ref()
    }

    /// Inserts a graph: returns the fresh [`CanonId`] when no inserted graph
    /// is isomorphic to it, `None` when it duplicates an existing class.
    pub fn insert(&mut self, graph: &LabeledGraph) -> Option<CanonId> {
        let fp = fingerprint(graph);
        let CanonSet { scratch, code_buf, entries, buckets, fingerprint_hits } = self;
        match buckets.entry(fp) {
            Entry::Vacant(slot) => {
                // a fresh fingerprint proves non-isomorphism with everything
                // interned: no canonical key needed (the representative is
                // retained so a later collision can still materialize it)
                let id = entries.len() as u32;
                entries.push(CanonEntry {
                    fingerprint: fp,
                    next: NO_ENTRY,
                    key: None,
                    graph: Some(graph.clone()),
                });
                slot.insert(id);
                Some(CanonId(id))
            }
            Entry::Occupied(slot) => {
                *fingerprint_hits += 1;
                min_dfs_code_into(graph, scratch, code_buf);
                let head = *slot.get();
                let mut cur = head;
                loop {
                    let entry = &mut entries[cur as usize];
                    if entry.key.is_none() {
                        let g = entry.graph.take().expect("entry retains graph until key materializes");
                        entry.key = Some(min_dfs_code_with(&g, scratch));
                    }
                    if entry.key.as_ref() == Some(&*code_buf) {
                        return None;
                    }
                    if entry.next == NO_ENTRY {
                        break;
                    }
                    cur = entry.next;
                }
                // genuine fingerprint collision between non-isomorphic
                // graphs: intern with the key we already paid for
                let id = entries.len() as u32;
                entries.push(CanonEntry {
                    fingerprint: fp,
                    next: head,
                    key: Some(code_buf.clone()),
                    graph: None,
                });
                *slot.into_mut() = id;
                Some(CanonId(id))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfscode::{is_min_code, min_dfs_code};

    fn l(x: u32) -> Label {
        Label(x)
    }

    fn path_graph(labels: &[u32]) -> LabeledGraph {
        let labels: Vec<Label> = labels.iter().map(|&x| l(x)).collect();
        let edges: Vec<(u32, u32)> = (0..labels.len() as u32 - 1).map(|i| (i, i + 1)).collect();
        LabeledGraph::from_unlabeled_edges(&labels, edges).unwrap()
    }

    #[test]
    fn fingerprint_invariant_under_relabeling() {
        let a = path_graph(&[0, 1, 2, 3]);
        // same path with vertices stored in reverse order
        let b =
            LabeledGraph::from_unlabeled_edges(&[l(3), l(2), l(1), l(0)], [(3, 2), (2, 1), (1, 0)]).unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn fingerprint_separates_easy_non_isomorphic_cases() {
        let path = path_graph(&[0, 0, 0]);
        let tri = LabeledGraph::from_unlabeled_edges(&[l(0); 3], [(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_ne!(fingerprint(&path), fingerprint(&tri));
        let other_labels = path_graph(&[0, 0, 1]);
        assert_ne!(fingerprint(&path), fingerprint(&other_labels));
    }

    #[test]
    fn scratch_engine_matches_reference() {
        let mut scratch = CanonScratch::new();
        let graphs = [
            path_graph(&[0, 1, 2, 3]),
            LabeledGraph::from_unlabeled_edges(&[l(0); 3], [(0, 1), (1, 2), (0, 2)]).unwrap(),
            LabeledGraph::from_unlabeled_edges(
                &[l(2), l(0), l(1), l(0), l(5)],
                [(0, 1), (1, 2), (2, 3), (3, 0), (1, 4)],
            )
            .unwrap(),
        ];
        for g in &graphs {
            assert_eq!(min_dfs_code_with(g, &mut scratch), min_dfs_code(g));
        }
        let (full_keys, _) = scratch.counters();
        assert_eq!(full_keys, graphs.len() as u64);
    }

    #[test]
    fn is_minimal_early_aborts_on_non_minimal_codes() {
        let mut scratch = CanonScratch::new();
        let g = path_graph(&[0, 1, 2]);
        let min = min_dfs_code(&g);
        assert!(is_minimal_with(&min, &mut scratch));
        // a code starting from the large-label end is non-minimal
        let mut bad = DfsCode::new();
        bad.push(DfsEdge { from: 0, to: 1, from_label: l(2), edge_label: l(0), to_label: l(1) });
        bad.push(DfsEdge { from: 1, to: 2, from_label: l(1), edge_label: l(0), to_label: l(0) });
        assert!(!is_min_code(&bad));
        let aborts_before = scratch.counters().1;
        assert!(!is_minimal_with(&bad, &mut scratch));
        assert!(scratch.counters().1 > aborts_before, "the refutation must abort early");
        assert!(is_minimal_with(&DfsCode::new(), &mut scratch));
    }

    #[test]
    fn canon_set_dedups_isomorphic_graphs() {
        let mut set = CanonSet::new();
        let a = path_graph(&[0, 1, 2]);
        let b = LabeledGraph::from_unlabeled_edges(&[l(2), l(1), l(0)], [(0, 1), (1, 2)]).unwrap();
        let id_a = set.insert(&a).expect("first insert is new");
        assert_eq!(id_a, CanonId(0));
        // the isomorphic copy is rejected, and only the collision paid keys
        assert!(set.insert(&b).is_none());
        assert_eq!(set.len(), 1);
        let stats = set.stats();
        assert_eq!(stats.fingerprint_hits, 1);
        assert_eq!(stats.full_keys, 2, "candidate + lazily materialized entry key");
        assert_eq!(set.key_of(id_a), Some(&min_dfs_code(&a)));
        // a distinct graph interns a second class without touching keys
        let c = path_graph(&[0, 1, 3]);
        let id_c = set.insert(&c).expect("distinct class");
        assert_eq!(id_c, CanonId(1));
        assert_eq!(set.key_of(id_c), None, "no collision, no key computed");
        assert_eq!(set.fingerprint_of(id_c), fingerprint(&c));
        // reset clears classes and counters but keeps serving
        set.reset();
        assert!(set.is_empty());
        assert_eq!(set.stats(), CanonStats::default());
        assert!(set.insert(&a).is_some());
    }

    #[test]
    fn canon_set_duplicate_rejection_reuses_memoized_keys() {
        let mut set = CanonSet::new();
        let a = path_graph(&[0, 1, 2, 3, 4]);
        set.insert(&a).unwrap();
        assert!(set.insert(&a).is_none());
        let keys_after_first = set.stats().full_keys;
        assert!(set.insert(&a).is_none());
        assert!(set.insert(&a).is_none());
        // each further duplicate pays exactly one candidate key; the stored
        // entry key is never recomputed
        assert_eq!(set.stats().full_keys, keys_after_first + 2);
    }
}
