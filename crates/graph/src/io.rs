//! Plain-text serialization of labeled graphs and graph databases.
//!
//! The format follows the line-oriented convention common to graph-mining
//! tools (gSpan's `.gspan` files):
//!
//! ```text
//! t # 0            # start of transaction 0
//! v 0 3            # vertex 0 with label 3
//! v 1 5
//! e 0 1 0          # edge between vertices 0 and 1 with edge label 0
//! ```
//!
//! [`write_database`] / [`parse_database`] round-trip a [`GraphDatabase`];
//! single graphs are written as a one-transaction database.

use crate::error::{GraphError, GraphResult};
use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use crate::transaction::GraphDatabase;
use std::fmt::Write as _;

/// Serializes a single graph in gSpan-like text format (as transaction `id`).
pub fn write_graph(g: &LabeledGraph, id: usize) -> String {
    let mut out = String::new();
    writeln!(out, "t # {id}").expect("writing to String cannot fail");
    for v in g.vertices() {
        writeln!(out, "v {} {}", v.0, g.label(v).id()).expect("writing to String cannot fail");
    }
    for e in g.edges() {
        writeln!(out, "e {} {} {}", e.u.0, e.v.0, e.label.id()).expect("writing to String cannot fail");
    }
    out
}

/// Serializes a whole database.
pub fn write_database(db: &GraphDatabase) -> String {
    let mut out = String::new();
    for (i, g) in db.iter() {
        out.push_str(&write_graph(g, i));
    }
    out
}

/// Parses a database from the text format produced by [`write_database`].
/// Blank lines and lines starting with `#` are ignored.
pub fn parse_database(text: &str) -> GraphResult<GraphDatabase> {
    let mut db = GraphDatabase::new();
    let mut current: Option<LabeledGraph> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        match tag {
            "t" => {
                if let Some(g) = current.take() {
                    db.push(g);
                }
                current = Some(LabeledGraph::new());
            }
            "v" => {
                let g = current.as_mut().ok_or(GraphError::Parse {
                    line: lineno,
                    reason: "vertex line before any 't' line".into(),
                })?;
                let id: u32 = parse_num(parts.next(), lineno, "vertex id")?;
                let label: u32 = parse_num(parts.next(), lineno, "vertex label")?;
                if id as usize != g.vertex_count() {
                    return Err(GraphError::Parse {
                        line: lineno,
                        reason: format!(
                            "vertex ids must be sequential; expected {}, got {}",
                            g.vertex_count(),
                            id
                        ),
                    });
                }
                g.add_vertex(Label(label));
            }
            "e" => {
                let g = current.as_mut().ok_or(GraphError::Parse {
                    line: lineno,
                    reason: "edge line before any 't' line".into(),
                })?;
                let u: u32 = parse_num(parts.next(), lineno, "edge source")?;
                let v: u32 = parse_num(parts.next(), lineno, "edge target")?;
                let label: u32 = parts
                    .next()
                    .map(|s| {
                        s.parse::<u32>().map_err(|_| GraphError::Parse {
                            line: lineno,
                            reason: format!("invalid edge label '{s}'"),
                        })
                    })
                    .transpose()?
                    .unwrap_or(0);
                g.add_edge(VertexId(u), VertexId(v), Label(label))
                    .map_err(|e| GraphError::Parse { line: lineno, reason: e.to_string() })?;
            }
            other => {
                return Err(GraphError::Parse { line: lineno, reason: format!("unknown line tag '{other}'") })
            }
        }
    }
    if let Some(g) = current.take() {
        db.push(g);
    }
    Ok(db)
}

/// Parses a single graph (the first transaction of the text).
pub fn parse_graph(text: &str) -> GraphResult<LabeledGraph> {
    let db = parse_database(text)?;
    if db.is_empty() {
        return Err(GraphError::Parse { line: 0, reason: "no graph found in input".into() });
    }
    Ok(db[0].clone())
}

fn parse_num(tok: Option<&str>, line: usize, what: &str) -> GraphResult<u32> {
    let tok = tok.ok_or_else(|| GraphError::Parse { line, reason: format!("missing {what}") })?;
    tok.parse::<u32>().map_err(|_| GraphError::Parse { line, reason: format!("invalid {what} '{tok}'") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> GraphDatabase {
        let g0 = LabeledGraph::from_parts(
            &[Label(1), Label(2), Label(1)],
            [(0u32, 1u32, Label(0)), (1, 2, Label(3))],
        )
        .unwrap();
        let g1 = LabeledGraph::from_unlabeled_edges(&[Label(5), Label(5)], [(0, 1)]).unwrap();
        GraphDatabase::from_graphs(vec![g0, g1])
    }

    #[test]
    fn roundtrip_database() {
        let db = sample_db();
        let text = write_database(&db);
        let back = parse_database(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].vertex_count(), 3);
        assert_eq!(back[0].edge_label(VertexId(1), VertexId(2)), Some(Label(3)));
        assert_eq!(back[1].label(VertexId(0)), Label(5));
    }

    #[test]
    fn roundtrip_single_graph() {
        let g = sample_db()[0].clone();
        let text = write_graph(&g, 0);
        let back = parse_graph(&text).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header\n\nt # 0\nv 0 1\nv 1 2\n\ne 0 1 0\n";
        let db = parse_database(text).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db[0].edge_count(), 1);
    }

    #[test]
    fn edge_label_defaults_to_zero() {
        let text = "t # 0\nv 0 1\nv 1 1\ne 0 1\n";
        let db = parse_database(text).unwrap();
        assert_eq!(db[0].edge_label(VertexId(0), VertexId(1)), Some(Label(0)));
    }

    #[test]
    fn vertex_before_transaction_is_error() {
        assert!(parse_database("v 0 1\n").is_err());
    }

    #[test]
    fn non_sequential_vertex_ids_rejected() {
        let text = "t # 0\nv 1 1\n";
        let err = parse_database(text).unwrap_err();
        assert!(matches!(err, GraphError::Parse { .. }));
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(parse_database("t # 0\nx 0 0\n").is_err());
    }

    #[test]
    fn invalid_numbers_rejected() {
        assert!(parse_database("t # 0\nv zero 1\n").is_err());
        assert!(parse_database("t # 0\nv 0 1\nv 1 1\ne 0 one\n").is_err());
    }

    #[test]
    fn duplicate_edge_reported_with_line() {
        let text = "t # 0\nv 0 1\nv 1 1\ne 0 1 0\ne 1 0 0\n";
        let err = parse_database(text).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 5),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_input_gives_empty_db_and_graph_error() {
        assert!(parse_database("").unwrap().is_empty());
        assert!(parse_graph("").is_err());
    }
}
