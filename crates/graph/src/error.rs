//! Error types for the graph substrate.

use std::fmt;

/// Errors produced when constructing or manipulating labeled graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id referenced an index outside the graph.
    VertexOutOfBounds {
        /// The offending vertex index.
        vertex: u32,
        /// Number of vertices actually present.
        len: usize,
    },
    /// An edge was added twice between the same pair of vertices.
    DuplicateEdge {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// Self loops are not allowed in this problem setting.
    SelfLoop {
        /// The vertex that was connected to itself.
        vertex: u32,
    },
    /// An edge removal referenced an edge that does not exist.
    EdgeNotFound {
        /// First endpoint.
        u: u32,
        /// Second endpoint.
        v: u32,
    },
    /// The operation requires a connected graph.
    NotConnected,
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// A path was malformed (not simple, or consecutive vertices not adjacent).
    InvalidPath {
        /// Human readable reason.
        reason: String,
    },
    /// A transaction database index was out of range.
    TransactionOutOfBounds {
        /// The offending transaction index.
        index: usize,
        /// Number of transactions in the database.
        len: usize,
    },
    /// Parsing a serialized graph failed.
    Parse {
        /// Line number (1-based) where parsing failed, if known.
        line: usize,
        /// Human readable reason.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds { vertex, len } => {
                write!(f, "vertex {vertex} out of bounds for graph with {len} vertices")
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "edge ({u}, {v}) already exists")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self loop on vertex {vertex} not allowed"),
            GraphError::EdgeNotFound { u, v } => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::NotConnected => write!(f, "operation requires a connected graph"),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::InvalidPath { reason } => write!(f, "invalid path: {reason}"),
            GraphError::TransactionOutOfBounds { index, len } => {
                write!(f, "transaction {index} out of bounds for database with {len} graphs")
            }
            GraphError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience result alias used across the crate.
pub type GraphResult<T> = Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_vertex_out_of_bounds() {
        let e = GraphError::VertexOutOfBounds { vertex: 7, len: 3 };
        assert_eq!(e.to_string(), "vertex 7 out of bounds for graph with 3 vertices");
    }

    #[test]
    fn display_duplicate_edge() {
        let e = GraphError::DuplicateEdge { u: 1, v: 2 };
        assert_eq!(e.to_string(), "edge (1, 2) already exists");
    }

    #[test]
    fn display_self_loop() {
        let e = GraphError::SelfLoop { vertex: 4 };
        assert!(e.to_string().contains("self loop"));
    }

    #[test]
    fn display_parse() {
        let e = GraphError::Parse { line: 12, reason: "bad token".into() };
        assert!(e.to_string().contains("line 12"));
        assert!(e.to_string().contains("bad token"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&GraphError::NotConnected);
    }
}
