//! The skinny-pattern definitions of the paper (Definitions 5–7):
//! vertex levels with respect to the canonical diameter, δ-skinny graphs and
//! l-long δ-skinny graphs.
//!
//! These checks are the *specification*: the SkinnyMine miner never needs to
//! run them during growth (it maintains the constraint incrementally), but
//! tests, verification and data generation use them as the ground truth.

use crate::distance::{canonical_diameter, distances_to_path};
use crate::error::GraphResult;
use crate::graph::LabeledGraph;
use crate::path::Path;
use crate::traversal::UNREACHABLE;
use serde::{Deserialize, Serialize};

/// A full skinny analysis of a connected graph: its canonical diameter and
/// the level (distance to the diameter) of every vertex.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SkinnyAnalysis {
    /// The canonical diameter `L_G` (Definition 4).
    pub canonical_diameter: Path,
    /// `levels[v]` = `Dist(v, L_G)` (Definition 5).
    pub levels: Vec<u32>,
}

impl SkinnyAnalysis {
    /// Length of the canonical diameter in edges.
    pub fn diameter_length(&self) -> usize {
        self.canonical_diameter.len()
    }

    /// The maximum vertex level (the graph's "skinniness"):
    /// the smallest δ such that the graph is δ-skinny.
    pub fn skinniness(&self) -> u32 {
        self.levels.iter().copied().filter(|&d| d != UNREACHABLE).max().unwrap_or(0)
    }

    /// True if the analyzed graph is δ-skinny (Definition 6).
    pub fn is_delta_skinny(&self, delta: u32) -> bool {
        self.levels.iter().all(|&d| d != UNREACHABLE && d <= delta)
    }

    /// True if the analyzed graph is l-long δ-skinny (Definition 7).
    pub fn is_l_long_delta_skinny(&self, l: usize, delta: u32) -> bool {
        self.diameter_length() == l && self.is_delta_skinny(delta)
    }

    /// Number of vertices at each level, indexed by level.
    pub fn level_histogram(&self) -> Vec<usize> {
        let max = self.skinniness() as usize;
        let mut hist = vec![0usize; max + 1];
        for &d in &self.levels {
            if d != UNREACHABLE {
                hist[d as usize] += 1;
            }
        }
        hist
    }
}

/// Analyzes a connected graph: computes its canonical diameter and vertex
/// levels.  Errors on empty or disconnected graphs.
pub fn analyze(graph: &LabeledGraph) -> GraphResult<SkinnyAnalysis> {
    let cd = canonical_diameter(graph)?;
    let levels = distances_to_path(graph, &cd);
    Ok(SkinnyAnalysis { canonical_diameter: cd, levels })
}

/// True if the connected graph is δ-skinny (Definition 6): every vertex is at
/// distance at most δ from the canonical diameter.
pub fn is_delta_skinny(graph: &LabeledGraph, delta: u32) -> GraphResult<bool> {
    Ok(analyze(graph)?.is_delta_skinny(delta))
}

/// True if the connected graph is l-long δ-skinny (Definition 7).
pub fn is_l_long_delta_skinny(graph: &LabeledGraph, l: usize, delta: u32) -> GraphResult<bool> {
    Ok(analyze(graph)?.is_l_long_delta_skinny(l, delta))
}

/// The smallest δ for which the graph is δ-skinny, together with its
/// canonical diameter length — a compact "shape" descriptor used by
/// experiments to classify mined patterns as skinny or fat.
pub fn shape(graph: &LabeledGraph) -> GraphResult<(usize, u32)> {
    let a = analyze(graph)?;
    Ok((a.diameter_length(), a.skinniness()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::VertexId;
    use crate::label::Label;

    /// Figure-3-like graph: a 6-long backbone with twigs at levels 1 and 2.
    fn fig3_like() -> LabeledGraph {
        LabeledGraph::from_unlabeled_edges(
            &[
                Label(0),
                Label(0),
                Label(0),
                Label(0),
                Label(0),
                Label(0),
                Label(0), // 0..=6 backbone
                Label(4), // 7: level-1 twig on 2
                Label(4), // 8: level-1 twig on 4
                Label(5), // 9: level-2 twig on 8
            ],
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (2, 7), (4, 8), (8, 9)],
        )
        .unwrap()
    }

    #[test]
    fn analysis_levels_match_definition() {
        let g = fig3_like();
        let a = analyze(&g).unwrap();
        assert_eq!(a.diameter_length(), 6);
        assert_eq!(a.levels[0], 0);
        assert_eq!(a.levels[7], 1);
        assert_eq!(a.levels[9], 2);
        assert_eq!(a.skinniness(), 2);
        assert_eq!(a.level_histogram(), vec![7, 2, 1]);
    }

    #[test]
    fn fig3_graph_is_6_long_2_skinny() {
        let g = fig3_like();
        assert!(is_l_long_delta_skinny(&g, 6, 2).unwrap());
        assert!(!is_l_long_delta_skinny(&g, 6, 1).unwrap());
        assert!(!is_l_long_delta_skinny(&g, 5, 2).unwrap());
        assert!(is_delta_skinny(&g, 2).unwrap());
        assert!(is_delta_skinny(&g, 3).unwrap());
        assert!(!is_delta_skinny(&g, 1).unwrap());
    }

    #[test]
    fn pure_path_is_0_skinny() {
        let g = LabeledGraph::from_unlabeled_edges(&[Label(1); 4], [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(is_l_long_delta_skinny(&g, 3, 0).unwrap());
        let (l, d) = shape(&g).unwrap();
        assert_eq!((l, d), (3, 0));
    }

    #[test]
    fn star_graph_is_fat_relative_to_its_diameter() {
        // star with center 0 and 5 leaves: diameter 2, every leaf is on some
        // diameter or at distance 1 from it
        let mut g = LabeledGraph::new();
        let c = g.add_vertex(Label(0));
        for _ in 0..5 {
            let leaf = g.add_vertex(Label(1));
            g.add_unlabeled_edge(c, leaf).unwrap();
        }
        let a = analyze(&g).unwrap();
        assert_eq!(a.diameter_length(), 2);
        assert_eq!(a.skinniness(), 1);
        assert!(a.is_l_long_delta_skinny(2, 1));
        assert!(!a.is_l_long_delta_skinny(2, 0));
    }

    #[test]
    fn disconnected_graph_errors() {
        let g = LabeledGraph::from_unlabeled_edges(&[Label(0); 3], [(0, 1)]).unwrap();
        assert!(analyze(&g).is_err());
        assert!(is_delta_skinny(&g, 2).is_err());
    }

    #[test]
    fn single_vertex_is_0_long_0_skinny() {
        let mut g = LabeledGraph::new();
        g.add_vertex(Label(0));
        assert!(is_l_long_delta_skinny(&g, 0, 0).unwrap());
    }

    #[test]
    fn levels_are_stable_under_extra_backbone_vertex_ordering() {
        // canonical diameter orientation should not change level values
        let g = fig3_like();
        let a = analyze(&g).unwrap();
        let rev_levels = distances_to_path(&g, &a.canonical_diameter.reversed());
        assert_eq!(a.levels, rev_levels);
    }

    #[test]
    fn example_vertex_ids_on_backbone() {
        let g = fig3_like();
        let a = analyze(&g).unwrap();
        let verts = a.canonical_diameter.vertices().to_vec();
        assert_eq!(verts.first(), Some(&VertexId(0)));
        assert_eq!(verts.last(), Some(&VertexId(6)));
    }
}
