//! Labeled graph isomorphism (Definition 1).
//!
//! Two labeled graphs are isomorphic when a label-preserving bijection
//! between their vertex sets preserves adjacency in both directions.  The
//! check here is a straightforward backtracking search with label/degree
//! pruning — patterns in this problem are small (tens of vertices), so no
//! heavier machinery is needed.  The [`crate::dfscode`] module provides a
//! canonical code that can be used for bulk deduplication instead.

use crate::graph::{LabeledGraph, VertexId};

/// Returns true when `a` and `b` are isomorphic labeled graphs
/// (`a =_L b` in the paper's notation).
pub fn are_isomorphic(a: &LabeledGraph, b: &LabeledGraph) -> bool {
    if a.vertex_count() != b.vertex_count() || a.edge_count() != b.edge_count() {
        return false;
    }
    if a.vertex_count() == 0 {
        return true;
    }
    if a.signature() != b.signature() {
        return false;
    }
    // degree sequence per label must match
    let mut deg_a: Vec<(crate::label::Label, usize)> =
        a.vertices().map(|v| (a.label(v), a.degree(v))).collect();
    let mut deg_b: Vec<(crate::label::Label, usize)> =
        b.vertices().map(|v| (b.label(v), b.degree(v))).collect();
    deg_a.sort();
    deg_b.sort();
    if deg_a != deg_b {
        return false;
    }
    let n = a.vertex_count();
    let mut mapping: Vec<Option<VertexId>> = vec![None; n];
    let mut used = vec![false; n];
    backtrack(a, b, 0, &mut mapping, &mut used)
}

fn backtrack(
    a: &LabeledGraph,
    b: &LabeledGraph,
    next: usize,
    mapping: &mut Vec<Option<VertexId>>,
    used: &mut Vec<bool>,
) -> bool {
    if next == a.vertex_count() {
        return true;
    }
    let u = VertexId(next as u32);
    for cand in b.vertices() {
        if used[cand.index()] {
            continue;
        }
        if b.label(cand) != a.label(u) || b.degree(cand) != a.degree(u) {
            continue;
        }
        // adjacency with already-mapped vertices must match exactly
        let mut ok = true;
        for (prev, slot) in mapping.iter().enumerate().take(next) {
            let pv = VertexId(prev as u32);
            let mapped = slot.expect("mapped earlier");
            let a_adj = a.has_edge(u, pv);
            let b_adj = b.has_edge(cand, mapped);
            if a_adj != b_adj {
                ok = false;
                break;
            }
            if a_adj {
                // edge labels must match too
                if a.edge_label(u, pv) != b.edge_label(cand, mapped) {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        mapping[next] = Some(cand);
        used[cand.index()] = true;
        if backtrack(a, b, next + 1, mapping, used) {
            return true;
        }
        mapping[next] = None;
        used[cand.index()] = false;
    }
    false
}

/// Counts the automorphisms of a graph (label-preserving isomorphisms onto
/// itself).  Useful to reason about embedding multiplicities in tests.
pub fn automorphism_count(g: &LabeledGraph) -> usize {
    let n = g.vertex_count();
    if n == 0 {
        return 1;
    }
    let mut mapping: Vec<Option<VertexId>> = vec![None; n];
    let mut used = vec![false; n];
    let mut count = 0usize;
    count_automorphisms(g, 0, &mut mapping, &mut used, &mut count);
    count
}

fn count_automorphisms(
    g: &LabeledGraph,
    next: usize,
    mapping: &mut Vec<Option<VertexId>>,
    used: &mut Vec<bool>,
    count: &mut usize,
) {
    if next == g.vertex_count() {
        *count += 1;
        return;
    }
    let u = VertexId(next as u32);
    for cand in g.vertices() {
        if used[cand.index()] || g.label(cand) != g.label(u) || g.degree(cand) != g.degree(u) {
            continue;
        }
        let mut ok = true;
        for (prev, slot) in mapping.iter().enumerate().take(next) {
            let pv = VertexId(prev as u32);
            let mapped = slot.expect("mapped earlier");
            if g.has_edge(u, pv) != g.has_edge(cand, mapped) {
                ok = false;
                break;
            }
            if g.has_edge(u, pv) && g.edge_label(u, pv) != g.edge_label(cand, mapped) {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        mapping[next] = Some(cand);
        used[cand.index()] = true;
        count_automorphisms(g, next + 1, mapping, used, count);
        mapping[next] = None;
        used[cand.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;

    fn triangle(labels: [u32; 3]) -> LabeledGraph {
        LabeledGraph::from_unlabeled_edges(
            &[Label(labels[0]), Label(labels[1]), Label(labels[2])],
            [(0, 1), (1, 2), (0, 2)],
        )
        .unwrap()
    }

    #[test]
    fn identical_graphs_are_isomorphic() {
        let a = triangle([0, 1, 2]);
        assert!(are_isomorphic(&a, &a.clone()));
    }

    #[test]
    fn relabeled_vertex_order_is_isomorphic() {
        let a = triangle([0, 1, 2]);
        let b = triangle([2, 0, 1]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn different_labels_not_isomorphic() {
        let a = triangle([0, 1, 2]);
        let b = triangle([0, 1, 1]);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn different_structure_not_isomorphic() {
        let a = triangle([0, 0, 0]);
        let path = LabeledGraph::from_unlabeled_edges(&[Label(0); 3], [(0, 1), (1, 2)]).unwrap();
        assert!(!are_isomorphic(&a, &path));
    }

    #[test]
    fn path_vs_reversed_path_isomorphic() {
        let a =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(2)], [(0, 1), (1, 2)]).unwrap();
        let b =
            LabeledGraph::from_unlabeled_edges(&[Label(2), Label(1), Label(0)], [(0, 1), (1, 2)]).unwrap();
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn edge_labels_respected() {
        let a = LabeledGraph::from_parts(&[Label(0), Label(0)], [(0u32, 1u32, Label(1))]).unwrap();
        let b = LabeledGraph::from_parts(&[Label(0), Label(0)], [(0u32, 1u32, Label(2))]).unwrap();
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn empty_graphs_isomorphic() {
        assert!(are_isomorphic(&LabeledGraph::new(), &LabeledGraph::new()));
    }

    #[test]
    fn different_sizes_not_isomorphic() {
        let mut a = LabeledGraph::new();
        a.add_vertex(Label(0));
        assert!(!are_isomorphic(&a, &LabeledGraph::new()));
    }

    #[test]
    fn automorphisms_of_uniform_triangle() {
        let a = triangle([0, 0, 0]);
        assert_eq!(automorphism_count(&a), 6);
        let b = triangle([0, 0, 1]);
        assert_eq!(automorphism_count(&b), 2);
        let c = triangle([0, 1, 2]);
        assert_eq!(automorphism_count(&c), 1);
    }

    #[test]
    fn automorphisms_of_uniform_path() {
        // a path with symmetric labels has exactly 2 automorphisms
        let p =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(0)], [(0, 1), (1, 2)]).unwrap();
        assert_eq!(automorphism_count(&p), 2);
        // asymmetric labels: only the identity
        let q =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(2)], [(0, 1), (1, 2)]).unwrap();
        assert_eq!(automorphism_count(&q), 1);
    }
}
