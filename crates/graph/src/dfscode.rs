//! gSpan-style DFS codes and minimum (canonical) DFS codes.
//!
//! A DFS code represents a connected labeled graph as the edge sequence of a
//! depth-first traversal; the *minimum* DFS code over all traversals is a
//! canonical form: two connected labeled graphs are isomorphic iff their
//! minimum DFS codes are equal.  SkinnyMine uses minimum codes to deduplicate
//! result patterns in tests and verification, and the gSpan baseline uses
//! them for its rightmost-path pattern growth.

use crate::graph::{LabeledGraph, VertexId};
use crate::label::Label;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// One edge of a DFS code: `(i, j, l_i, l_e, l_j)` where `i`, `j` are DFS
/// discovery indices.  `i < j` is a forward edge, `i > j` a backward edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DfsEdge {
    /// DFS discovery index of the source endpoint.
    pub from: u32,
    /// DFS discovery index of the destination endpoint.
    pub to: u32,
    /// Label of the source vertex.
    pub from_label: Label,
    /// Edge label.
    pub edge_label: Label,
    /// Label of the destination vertex.
    pub to_label: Label,
}

impl DfsEdge {
    /// True for forward (tree) edges.
    #[inline]
    pub fn is_forward(&self) -> bool {
        self.from < self.to
    }

    /// True for backward edges.
    #[inline]
    pub fn is_backward(&self) -> bool {
        self.from > self.to
    }
}

/// Compares two DFS edges under the gSpan DFS-lexicographic edge order
/// (structure first, then labels).
pub fn cmp_dfs_edge(a: &DfsEdge, b: &DfsEdge) -> Ordering {
    let structural = match (a.is_forward(), b.is_forward()) {
        (false, false) => {
            // both backward
            a.from.cmp(&b.from).then(a.to.cmp(&b.to))
        }
        (true, true) => {
            // both forward: smaller destination first; on ties, the deeper
            // (larger) source comes first
            a.to.cmp(&b.to).then(b.from.cmp(&a.from))
        }
        (false, true) => {
            // a backward, b forward: a first iff a.from < b.to
            if a.from < b.to {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
        (true, false) => {
            // a forward, b backward: a first iff a.to <= b.from
            if a.to <= b.from {
                Ordering::Less
            } else {
                Ordering::Greater
            }
        }
    };
    structural
        .then_with(|| (a.from_label, a.edge_label, a.to_label).cmp(&(b.from_label, b.edge_label, b.to_label)))
}

/// A DFS code: an ordered sequence of DFS edges.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DfsCode {
    /// The edge sequence.
    pub edges: Vec<DfsEdge>,
}

impl DfsCode {
    /// Creates an empty code.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edges in the code.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the code has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of distinct DFS vertex indices referenced by the code.
    pub fn vertex_count(&self) -> usize {
        self.edges.iter().flat_map(|e| [e.from, e.to]).max().map(|m| m as usize + 1).unwrap_or(0)
    }

    /// Appends an edge.
    pub fn push(&mut self, e: DfsEdge) {
        self.edges.push(e);
    }

    /// Lexicographic comparison of two codes under the DFS edge order, with
    /// shorter prefixes ordered before their extensions.
    pub fn cmp_code(&self, other: &DfsCode) -> Ordering {
        for (a, b) in self.edges.iter().zip(other.edges.iter()) {
            match cmp_dfs_edge(a, b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        self.edges.len().cmp(&other.edges.len())
    }

    /// Reconstructs the labeled graph this code describes.  DFS indices
    /// become vertex ids.
    pub fn to_graph(&self) -> LabeledGraph {
        let mut g = LabeledGraph::with_capacity(self.vertex_count());
        let mut labels: Vec<Option<Label>> = vec![None; self.vertex_count()];
        for e in &self.edges {
            labels[e.from as usize].get_or_insert(e.from_label);
            labels[e.to as usize].get_or_insert(e.to_label);
        }
        for l in labels {
            g.add_vertex(l.expect("every DFS index appears in some edge"));
        }
        for e in &self.edges {
            // duplicate edges cannot occur in a valid DFS code
            g.add_edge(VertexId(e.from), VertexId(e.to), e.edge_label)
                .expect("valid DFS code produces a simple graph");
        }
        g
    }
}

/// A search state while computing the minimum DFS code: a partial mapping
/// from DFS indices to graph vertices, plus the rightmost path.
#[derive(Debug, Clone)]
struct CodeState {
    /// `dfs_to_graph[i]` = graph vertex with DFS index `i`.
    dfs_to_graph: Vec<VertexId>,
    /// `graph_to_dfs[v]` = DFS index of graph vertex v (u32::MAX if unvisited).
    graph_to_dfs: Vec<u32>,
    /// DFS indices on the rightmost path, root first.
    rightmost_path: Vec<u32>,
    /// Edges (as unordered graph vertex pairs) already used by the code.
    used_edges: Vec<(VertexId, VertexId)>,
}

impl CodeState {
    fn edge_used(&self, a: VertexId, b: VertexId) -> bool {
        self.used_edges.iter().any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }
}

/// A candidate next edge from a particular state.
#[derive(Debug, Clone)]
struct Candidate {
    edge: DfsEdge,
    state_idx: usize,
    /// Graph vertex the new DFS index maps to (forward edges only).
    new_vertex: Option<VertexId>,
    /// Graph vertex pair consumed by this edge.
    graph_edge: (VertexId, VertexId),
}

/// Computes the minimum DFS code of a connected labeled graph.
///
/// Runs the standard frontier construction: all DFS traversal states
/// realizing the current minimal code prefix are kept, the globally minimal
/// next edge is selected, and only states that can produce it survive.
/// Patterns in this repository are small, so the state set stays tiny.
pub fn min_dfs_code(graph: &LabeledGraph) -> DfsCode {
    let mut code = DfsCode::new();
    if graph.edge_count() == 0 {
        return code;
    }
    // initial states: one per vertex whose label is minimal? No — the first
    // edge decides; seed states from every vertex and let the first edge
    // selection prune them.
    let mut states: Vec<CodeState> = graph
        .vertices()
        .map(|v| {
            let mut graph_to_dfs = vec![u32::MAX; graph.vertex_count()];
            graph_to_dfs[v.index()] = 0;
            CodeState { dfs_to_graph: vec![v], graph_to_dfs, rightmost_path: vec![0], used_edges: Vec::new() }
        })
        .collect();

    for _ in 0..graph.edge_count() {
        let mut best: Option<DfsEdge> = None;
        let mut candidates: Vec<Candidate> = Vec::new();
        for (si, state) in states.iter().enumerate() {
            for cand in next_candidates(graph, state, si) {
                match &best {
                    None => {
                        best = Some(cand.edge);
                        candidates = vec![cand];
                    }
                    Some(b) => match cmp_dfs_edge(&cand.edge, b) {
                        Ordering::Less => {
                            best = Some(cand.edge);
                            candidates = vec![cand];
                        }
                        Ordering::Equal => candidates.push(cand),
                        Ordering::Greater => {}
                    },
                }
            }
        }
        let best = best.expect("connected graph with remaining edges has an extension");
        code.push(best);
        // advance every surviving candidate's state
        let mut new_states: Vec<CodeState> = Vec::with_capacity(candidates.len());
        for cand in candidates {
            let mut st = states[cand.state_idx].clone();
            st.used_edges.push(cand.graph_edge);
            if best.is_forward() {
                let nv = cand.new_vertex.expect("forward edge introduces a vertex");
                st.graph_to_dfs[nv.index()] = best.to;
                st.dfs_to_graph.push(nv);
                // rightmost path: truncate to the source, then append the new index
                let pos = st
                    .rightmost_path
                    .iter()
                    .position(|&d| d == best.from)
                    .expect("forward source lies on rightmost path");
                st.rightmost_path.truncate(pos + 1);
                st.rightmost_path.push(best.to);
            }
            new_states.push(st);
        }
        states = new_states;
    }
    code
}

/// Enumerates the admissible next edges from one DFS state, following the
/// gSpan growth rules: backward edges from the rightmost vertex (in
/// increasing destination index), then forward edges from rightmost-path
/// vertices.
fn next_candidates(graph: &LabeledGraph, state: &CodeState, state_idx: usize) -> Vec<Candidate> {
    let mut out = Vec::new();
    let rm_idx = *state.rightmost_path.last().expect("rightmost path nonempty");
    let rm_vertex = state.dfs_to_graph[rm_idx as usize];

    // Backward edges: rightmost vertex -> a vertex on the rightmost path.
    for &anc_idx in &state.rightmost_path {
        if anc_idx == rm_idx {
            continue;
        }
        let anc_vertex = state.dfs_to_graph[anc_idx as usize];
        if graph.has_edge(rm_vertex, anc_vertex) && !state.edge_used(rm_vertex, anc_vertex) {
            out.push(Candidate {
                edge: DfsEdge {
                    from: rm_idx,
                    to: anc_idx,
                    from_label: graph.label(rm_vertex),
                    edge_label: graph.edge_label(rm_vertex, anc_vertex).unwrap_or(Label::DEFAULT_EDGE),
                    to_label: graph.label(anc_vertex),
                },
                state_idx,
                new_vertex: None,
                graph_edge: (rm_vertex, anc_vertex),
            });
        }
    }

    // Forward edges: from any rightmost-path vertex to an unvisited vertex.
    let next_idx = state.dfs_to_graph.len() as u32;
    for &src_idx in state.rightmost_path.iter() {
        let src_vertex = state.dfs_to_graph[src_idx as usize];
        for (nbr, el) in graph.neighbors(src_vertex) {
            if state.graph_to_dfs[nbr.index()] != u32::MAX {
                continue;
            }
            out.push(Candidate {
                edge: DfsEdge {
                    from: src_idx,
                    to: next_idx,
                    from_label: graph.label(src_vertex),
                    edge_label: el,
                    to_label: graph.label(nbr),
                },
                state_idx,
                new_vertex: Some(nbr),
                graph_edge: (src_vertex, nbr),
            });
        }
    }
    out
}

/// True when `code` is the minimum DFS code of the graph it encodes.
/// Used by the gSpan baseline to prune non-canonical pattern duplicates.
pub fn is_min_code(code: &DfsCode) -> bool {
    if code.is_empty() {
        return true;
    }
    let g = code.to_graph();
    min_dfs_code(&g) == *code
}

/// A hashable canonical key for a connected labeled graph: its minimum DFS
/// code.  Two connected graphs are isomorphic iff their canonical keys match.
pub fn canonical_key(graph: &LabeledGraph) -> DfsCode {
    min_dfs_code(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iso::are_isomorphic;

    fn edge(from: u32, to: u32, fl: u32, el: u32, tl: u32) -> DfsEdge {
        DfsEdge { from, to, from_label: Label(fl), edge_label: Label(el), to_label: Label(tl) }
    }

    #[test]
    fn edge_order_backward_before_forward() {
        let b = edge(2, 0, 0, 0, 0);
        let f = edge(2, 3, 0, 0, 0);
        assert_eq!(cmp_dfs_edge(&b, &f), Ordering::Less);
        assert_eq!(cmp_dfs_edge(&f, &b), Ordering::Greater);
    }

    #[test]
    fn edge_order_forward_deeper_source_first() {
        let deep = edge(2, 3, 0, 0, 0);
        let shallow = edge(1, 3, 0, 0, 0);
        assert_eq!(cmp_dfs_edge(&deep, &shallow), Ordering::Less);
    }

    #[test]
    fn edge_order_labels_break_ties() {
        let a = edge(0, 1, 0, 0, 1);
        let b = edge(0, 1, 0, 0, 2);
        assert_eq!(cmp_dfs_edge(&a, &b), Ordering::Less);
    }

    #[test]
    fn min_code_of_single_edge() {
        let g = LabeledGraph::from_unlabeled_edges(&[Label(3), Label(1)], [(0, 1)]).unwrap();
        let code = min_dfs_code(&g);
        assert_eq!(code.len(), 1);
        // canonical orientation starts at the smaller label
        assert_eq!(code.edges[0].from_label, Label(1));
        assert_eq!(code.edges[0].to_label, Label(3));
    }

    #[test]
    fn min_code_roundtrip_reconstruction() {
        let g = LabeledGraph::from_unlabeled_edges(
            &[Label(0), Label(1), Label(2), Label(1)],
            [(0, 1), (1, 2), (2, 3), (3, 0)],
        )
        .unwrap();
        let code = min_dfs_code(&g);
        let back = code.to_graph();
        assert!(are_isomorphic(&g, &back));
        assert!(is_min_code(&code));
    }

    #[test]
    fn isomorphic_graphs_share_min_code() {
        let a =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(0)], [(0, 1), (1, 2)]).unwrap();
        // same path with vertices permuted
        let b =
            LabeledGraph::from_unlabeled_edges(&[Label(1), Label(0), Label(0)], [(0, 1), (0, 2)]).unwrap();
        assert!(are_isomorphic(&a, &b));
        assert_eq!(min_dfs_code(&a), min_dfs_code(&b));
    }

    #[test]
    fn non_isomorphic_graphs_differ() {
        let path = LabeledGraph::from_unlabeled_edges(&[Label(0); 3], [(0, 1), (1, 2)]).unwrap();
        let tri = LabeledGraph::from_unlabeled_edges(&[Label(0); 3], [(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_ne!(min_dfs_code(&path), min_dfs_code(&tri));
    }

    #[test]
    fn triangle_min_code_has_backward_edge() {
        let tri = LabeledGraph::from_unlabeled_edges(&[Label(0); 3], [(0, 1), (1, 2), (0, 2)]).unwrap();
        let code = min_dfs_code(&tri);
        assert_eq!(code.len(), 3);
        assert!(code.edges[2].is_backward());
        assert_eq!(code.vertex_count(), 3);
    }

    #[test]
    fn min_code_respects_labels() {
        // star with center label 9 and leaves 1,2,3: the code must start from
        // the edge with the smallest (from,to) label pair
        let mut g = LabeledGraph::new();
        let c = g.add_vertex(Label(9));
        let l1 = g.add_vertex(Label(1));
        let l2 = g.add_vertex(Label(2));
        let l3 = g.add_vertex(Label(3));
        g.add_unlabeled_edge(c, l1).unwrap();
        g.add_unlabeled_edge(c, l2).unwrap();
        g.add_unlabeled_edge(c, l3).unwrap();
        let code = min_dfs_code(&g);
        assert_eq!(code.edges[0].from_label, Label(1));
        assert_eq!(code.edges[0].to_label, Label(9));
    }

    #[test]
    fn empty_graph_has_empty_code() {
        let g = LabeledGraph::new();
        assert!(min_dfs_code(&g).is_empty());
        assert!(is_min_code(&DfsCode::new()));
    }

    #[test]
    fn non_minimal_code_detected() {
        // path a(0)-b(1)-c(2): a non-canonical code starting from the large
        // label end must be rejected by is_min_code
        let mut bad = DfsCode::new();
        bad.push(edge(0, 1, 2, 0, 1));
        bad.push(edge(1, 2, 1, 0, 0));
        assert!(!is_min_code(&bad));
        let mut good = DfsCode::new();
        good.push(edge(0, 1, 0, 0, 1));
        good.push(edge(1, 2, 1, 0, 2));
        assert!(is_min_code(&good));
    }

    #[test]
    fn cmp_code_prefix_is_smaller() {
        let mut a = DfsCode::new();
        a.push(edge(0, 1, 0, 0, 0));
        let mut b = a.clone();
        b.push(edge(1, 2, 0, 0, 0));
        assert_eq!(a.cmp_code(&b), Ordering::Less);
        assert_eq!(b.cmp_code(&a), Ordering::Greater);
        assert_eq!(a.cmp_code(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn canonical_key_distinguishes_label_permutations() {
        let a =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(0), Label(1)], [(0, 1), (1, 2)]).unwrap();
        let b =
            LabeledGraph::from_unlabeled_edges(&[Label(0), Label(1), Label(0)], [(0, 1), (1, 2)]).unwrap();
        // a: path 0-0-1 ; b: path 0-1-0 — not isomorphic
        assert!(!are_isomorphic(&a, &b));
        assert_ne!(canonical_key(&a), canonical_key(&b));
    }
}
