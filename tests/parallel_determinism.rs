//! Workspace-level determinism guarantee of the parallel mining engine:
//! for any thread count **and for either data representation**
//! (adjacency lists or the columnar CSR snapshot), `SkinnyMine` must produce
//! **byte-identical** results — same patterns, same order, same embeddings —
//! because Stage I's chunked occurrence joins and Stage II's per-seed
//! cluster growth both merge their partial results in deterministic task
//! order, and both representations share one neighbor/edge iteration order.

use skinny_datagen::{erdos_renyi, inject_patterns, skinny_pattern, ErConfig, SkinnyPatternConfig};
use skinny_graph::{canonical_key, LabeledGraph};
use skinnymine::{
    Exploration, LengthConstraint, MiningResult, ReportMode, Representation, SkinnyMine, SkinnyMineConfig,
};

/// An Erdős–Rényi background with a known skinny pattern injected twice.
fn injected_er_graph() -> LabeledGraph {
    let background = erdos_renyi(&ErConfig::new(260, 2.0, 40, 7));
    let pattern = skinny_pattern(&SkinnyPatternConfig::new(13, 8, 2, 40, 19));
    inject_patterns(&background, &[(pattern, 2)], 3).graph
}

/// A full, order-sensitive fingerprint of a mining result: canonical key,
/// cluster identity, support flags and the exact embedding lists of every
/// pattern, in reported order.
fn fingerprint(result: &MiningResult) -> Vec<String> {
    result
        .patterns
        .iter()
        .map(|p| {
            format!(
                "{:?}|{:?}|{}|{}|{}|{:?}",
                canonical_key(&p.graph),
                p.diameter_labels,
                p.support,
                p.closed,
                p.maximal,
                p.embeddings.embeddings,
            )
        })
        .collect()
}

fn assert_thread_invariant(config: SkinnyMineConfig, graph: &LabeledGraph) {
    let baseline =
        SkinnyMine::new(config.clone().with_threads(1).with_representation(Representation::Adjacency))
            .mine(graph)
            .expect("mining succeeds");
    assert!(!baseline.is_empty(), "fixture must produce patterns for the comparison to mean anything");
    for representation in [Representation::Adjacency, Representation::CsrSnapshot] {
        for threads in [1usize, 2, 8] {
            if representation == Representation::Adjacency && threads == 1 {
                continue; // that is the baseline itself
            }
            let run =
                SkinnyMine::new(config.clone().with_threads(threads).with_representation(representation))
                    .mine(graph)
                    .expect("mining succeeds");
            assert_eq!(
                fingerprint(&baseline),
                fingerprint(&run),
                "threads = {threads}, representation = {representation:?} diverged from the \
                 sequential adjacency result"
            );
            assert_eq!(baseline.stats.clusters, run.stats.clusters);
            assert_eq!(baseline.stats.reported_patterns, run.stats.reported_patterns);
            assert_eq!(
                baseline.stats.level_grow.candidates_examined, run.stats.level_grow.candidates_examined,
                "threads = {threads}, representation = {representation:?}: ordered merge must \
                 reproduce the sequential counters"
            );
        }
    }
}

#[test]
fn closure_jump_mining_is_thread_invariant() {
    let graph = injected_er_graph();
    let config = SkinnyMineConfig::new(8, 2, 2)
        .with_length(LengthConstraint::AtLeast(7))
        .with_report(ReportMode::Closed)
        .with_exploration(Exploration::ClosureJump);
    assert_thread_invariant(config, &graph);
}

#[test]
fn exhaustive_mining_is_thread_invariant() {
    let graph = injected_er_graph();
    let config = SkinnyMineConfig::new(7, 1, 2)
        .with_length(LengthConstraint::Between(6, 7))
        .with_report(ReportMode::All);
    assert_thread_invariant(config, &graph);
}

#[test]
fn transaction_setting_is_thread_invariant() {
    let t = |seed: u64| {
        let background = erdos_renyi(&ErConfig::new(120, 2.0, 30, seed));
        let pattern = skinny_pattern(&SkinnyPatternConfig::new(10, 6, 2, 30, 77));
        inject_patterns(&background, &[(pattern, 1)], seed + 1).graph
    };
    let db = skinny_graph::GraphDatabase::from_graphs((0..4).map(|i| t(i as u64)).collect());
    let config = SkinnyMineConfig::new(6, 2, 3)
        .with_support_measure(skinny_graph::SupportMeasure::Transactions)
        .with_report(ReportMode::Closed)
        .with_exploration(Exploration::ClosureJump);
    let baseline =
        SkinnyMine::new(config.clone().with_threads(1).with_representation(Representation::Adjacency))
            .mine_database(&db)
            .expect("mining succeeds");
    for representation in [Representation::Adjacency, Representation::CsrSnapshot] {
        for threads in [1usize, 2, 8] {
            if representation == Representation::Adjacency && threads == 1 {
                continue;
            }
            let run =
                SkinnyMine::new(config.clone().with_threads(threads).with_representation(representation))
                    .mine_database(&db)
                    .expect("mining succeeds");
            assert_eq!(
                fingerprint(&baseline),
                fingerprint(&run),
                "threads = {threads}, representation = {representation:?}"
            );
        }
    }
}
