//! Allocation accounting of the mining hot loops.
//!
//! The occurrence join engine's contract is that the per-row work of Stage
//! I's concat/merge joins and Stage II's extension enumeration performs
//! **zero heap allocation on the reject path**: a scanned row that produces
//! no output touches only epoch-stamped marks and reused buffers.  Total
//! allocation per join call is therefore proportional to *emitted patterns*
//! (plus a small constant for the index build and scratch), never to
//! *scanned rows*.
//!
//! This binary installs a counting `#[global_allocator]` and drives the
//! three hot loops over fixtures with hundreds of scanned rows and zero (or
//! one) emitted patterns, asserting the allocation-event count stays far
//! below the scanned-row count.  Everything runs inside one `#[test]` so no
//! concurrent test thread can pollute the counter.

use skinny_graph::{
    CanonSet, GroupSorter, Label, LabeledGraph, SnapshotBuilder, SupportBatch, SupportMeasure,
    SupportScratch, VertexId, VertexMarks,
};
use skinnymine::diam_mine::LadderLevel;
use skinnymine::{
    DiamMine, Extension, ExtensionScratch, GrownPattern, IncrementalMiner, MinimalPatternIndex, MiningData,
    PatternTable, ReportMode, SkinnyMineConfig, StructScratch,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counts allocation events (alloc + realloc) on top of the system allocator.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn alloc_events() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

fn counted<T>(f: impl FnOnce() -> T) -> (u64, T) {
    let before = alloc_events();
    let value = f();
    (alloc_events() - before, value)
}

fn l(x: u32) -> Label {
    Label(x)
}

/// A perfect matching: `n` disjoint edges, all vertices label 0.  Every
/// concat candidate pair is the edge and its own reversal, so the join scans
/// `2n` directed rows, probes `2n` candidate pairs and emits nothing.
fn matching_graph(n: u32) -> LabeledGraph {
    let labels = vec![l(0); 2 * n as usize];
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (2 * i, 2 * i + 1)).collect();
    LabeledGraph::from_unlabeled_edges(&labels, edges).unwrap()
}

/// `n` disjoint triangles, all label 0.  Length-2 paths abound, but merging
/// two of them into a length-3 path always revisits a vertex, so the merge
/// join scans and probes hundreds of rows and emits nothing.
fn triangles_graph(n: u32) -> LabeledGraph {
    let labels = vec![l(0); 3 * n as usize];
    let mut edges = Vec::new();
    for i in 0..n {
        let b = 3 * i;
        edges.extend([(b, b + 1), (b + 1, b + 2), (b, b + 2)]);
    }
    LabeledGraph::from_unlabeled_edges(&labels, edges).unwrap()
}

/// `n` disjoint labeled paths a–b–c: concat emits exactly one pattern from
/// `4n` scanned directed rows.
fn labeled_paths_graph(n: u32) -> LabeledGraph {
    let mut labels = Vec::new();
    let mut edges = Vec::new();
    for i in 0..n {
        let b = 3 * i;
        labels.extend([l(0), l(1), l(2)]);
        edges.extend([(b, b + 1), (b + 1, b + 2)]);
    }
    LabeledGraph::from_unlabeled_edges(&labels, edges).unwrap()
}

#[test]
fn hot_loops_allocate_per_pattern_not_per_row() {
    // ---- Stage I concat: reject path ------------------------------------
    let g = matching_graph(300);
    let dm = DiamMine::new(MiningData::Single(&g), 1, SupportMeasure::DistinctVertexSets);
    let len1 = dm.frequent_edges();
    assert_eq!(len1.len(), 1);
    let scanned_rows = 2 * len1[0].embeddings.len() as u64; // both orientations
    assert_eq!(scanned_rows, 600);
    let _warmup = dm.concat_double(&len1);
    let (concat_allocs, len2) = counted(|| dm.concat_double(&len1));
    assert!(len2.is_empty(), "a matching has no length-2 path");
    assert!(
        concat_allocs < scanned_rows / 4,
        "concat reject path allocated {concat_allocs} times for {scanned_rows} scanned rows — \
         the reject path must not allocate per row"
    );

    // ---- Stage I merge: reject path -------------------------------------
    let g = triangles_graph(200);
    let dm = DiamMine::new(MiningData::Single(&g), 1, SupportMeasure::DistinctVertexSets);
    let len2 = dm.concat_double(&dm.frequent_edges());
    assert_eq!(len2.len(), 1, "all length-2 paths share the all-zero label pattern");
    let scanned_rows = 2 * len2[0].embeddings.len() as u64;
    assert!(scanned_rows >= 1000, "fixture must scan many rows, got {scanned_rows}");
    let _warmup = dm.merge_to_length(&len2, 3);
    let (merge_allocs, len3) = counted(|| dm.merge_to_length(&len2, 3));
    assert!(len3.is_empty(), "a length-3 path needs 4 distinct vertices — impossible in a triangle");
    assert!(
        merge_allocs < scanned_rows / 4,
        "merge reject path allocated {merge_allocs} times for {scanned_rows} scanned rows — \
         the reject path must not allocate per row"
    );

    // ---- Stage I ladder level: warm arena rebuild is allocation-free ----
    // the level-carried join index's steady state (same level shape, fresh
    // patterns — as on every incremental refresh of a maintained ladder):
    // once the directed-row arena, source column and prefix index have seen
    // the shape, a rebuild must not touch the heap
    let mut level = LadderLevel::from_patterns(len2.clone(), 1);
    let next_patterns = len2.clone(); // the handoff itself is a move
    let (level_allocs, ()) = counted(|| level.rebuild(next_patterns, 1));
    assert_eq!(level.patterns().len(), 1);
    assert_eq!(
        level_allocs, 0,
        "warm ladder-level rebuild allocated {level_allocs} times for {scanned_rows} directed \
         rows — arena, source column and prefix index must all be reused"
    );

    // ---- Stage I σ-pruned support: warm evaluation is allocation-free ---
    // both verdicts of the pruned evaluator — the bail below σ and the
    // exact value at or above it — must run entirely in the epoch-stamped
    // scratch once it has seen the row count
    let store = &len2[0].embeddings;
    let mut support_scratch = SupportScratch::new();
    let exact = store.support_with(SupportMeasure::MinimumImage, &mut support_scratch);
    assert!(exact >= 1);
    let _warm = store.support_pruned(SupportMeasure::MinimumImage, exact + 1, &mut support_scratch);
    let (pruned_support_allocs, ()) = counted(|| {
        let rejected = store.support_pruned(SupportMeasure::MinimumImage, exact + 1, &mut support_scratch);
        assert!(rejected < exact + 1);
        let accepted = store.support_pruned(SupportMeasure::MinimumImage, exact, &mut support_scratch);
        assert_eq!(accepted, exact);
    });
    assert_eq!(
        pruned_support_allocs,
        0,
        "warm σ-pruned support allocated {pruned_support_allocs} times over {} rows — \
         the epoch-marked counting must reuse the scratch entirely",
        store.len()
    );

    // ---- Stage II extension enumeration: reject path --------------------
    let g = matching_graph(300);
    let data = MiningData::Single(&g);
    let dm = DiamMine::new(data.clone(), 1, SupportMeasure::DistinctVertexSets);
    let len1 = dm.frequent_edges();
    let pattern = GrownPattern::from_path_pattern(&len1[0]);
    let rows = pattern.embeddings.len() as u64;
    assert_eq!(rows, 300);
    // no vertex labeled 9 exists: every neighbor probe of every row rejects
    let ext = Extension::NewVertex { attach: 0, vertex_label: l(9), edge_label: Label::DEFAULT_EDGE };
    let mut marks = VertexMarks::new();
    let _warmup = pattern.extend_embeddings_with(&data, &ext, &mut marks);
    let (ext_allocs, extended) = counted(|| pattern.extend_embeddings_with(&data, &ext, &mut marks));
    assert!(extended.is_empty());
    assert!(
        ext_allocs < 32,
        "extension reject path allocated {ext_allocs} times for {rows} scanned rows — \
         with warm marks it must allocate at most a handful of times"
    );

    // ---- Stage II extension table: the inverted-index sweep -------------
    // 200 rows feed one candidate; a warm rebuild (the gather engine's
    // per-pattern work, and the entire reject path when the candidate is
    // bound-pruned below sigma) must allocate per candidate, never per row
    let g = labeled_paths_graph(200);
    let data = MiningData::Single(&g);
    let dm = DiamMine::new(data.clone(), 1, SupportMeasure::DistinctVertexSets);
    let len1 = dm.frequent_edges();
    let pattern = GrownPattern::from_path_pattern(&len1[0]);
    let rows = pattern.embeddings.len() as u64;
    assert_eq!(rows, 200);
    let mut ext_scratch = ExtensionScratch::new();
    ext_scratch.build(&pattern, &data, 2);
    let (build_allocs, ()) = counted(|| ext_scratch.build(&pattern, &data, 2));
    assert_eq!(ext_scratch.table.candidate_count(), 1);
    assert_eq!(ext_scratch.table.support_upper_bound(0), rows as usize);
    assert!(
        build_allocs < 32,
        "extension-table build allocated {build_allocs} times for {rows} swept rows — \
         the warm sweep must not allocate per row"
    );
    // gathering the surviving candidate materializes exactly its rows: one
    // pre-sized store per candidate, no per-row growth
    let (gather_allocs, gathered) = counted(|| ext_scratch.table.gather(0, &pattern.embeddings));
    assert_eq!(gathered.len(), rows as usize);
    assert!(
        gather_allocs < 8,
        "gather allocated {gather_allocs} times for {rows} gathered rows — \
         the store must be pre-sized from the incidence count"
    );

    // ---- Stage II batched support: warm pass is allocation-free ---------
    // the batched evaluator's steady state: per-parent rank tables and all
    // per-candidate scratch reach full size during warm-up, after which a
    // fresh prepare (invalidate + re-prepare, as on every table rebuild)
    // plus candidate scoring — for all four measures — allocates nothing
    let all_measures = [
        SupportMeasure::EmbeddingCount,
        SupportMeasure::Transactions,
        SupportMeasure::MinimumImage,
        SupportMeasure::DistinctVertexSets,
    ];
    let entries = ext_scratch.table.entries(0);
    // a single data graph is one transaction; every other measure sees the
    // 200 disjoint embeddings
    let expected = |measure| if measure == SupportMeasure::Transactions { 1 } else { rows as usize };
    let mut batch = SupportBatch::new();
    for measure in all_measures {
        batch.invalidate();
        assert_eq!(batch.support_extended(&pattern.embeddings, measure, entries, true), expected(measure));
    }
    let (batch_allocs, ()) = counted(|| {
        for measure in all_measures {
            batch.invalidate();
            assert_eq!(
                batch.support_extended(&pattern.embeddings, measure, entries, true),
                expected(measure)
            );
        }
    });
    assert_eq!(
        batch_allocs, 0,
        "warm batched support allocated {batch_allocs} times across 4 measures × {rows} rows — \
         rank tables and scoring scratch must be fully reused"
    );
    // the early-exiting variant shares every buffer with the exhaustive one:
    // warm evaluation at any threshold allocates nothing either
    let (pruned_allocs, ()) = counted(|| {
        for measure in all_measures {
            batch.invalidate();
            for sigma in [1usize, rows as usize + 1] {
                let sup = batch.support_extended_pruned(&pattern.embeddings, measure, entries, true, sigma);
                if sigma <= expected(measure) {
                    assert_eq!(sup, expected(measure));
                } else {
                    assert!(sup < sigma);
                }
            }
        }
    });
    assert_eq!(
        pruned_allocs, 0,
        "warm pruned support allocated {pruned_allocs} times — \
         it must reuse the exhaustive evaluator's buffers"
    );

    // ---- Stage II table refilter: warm advance is allocation-free -------
    // a closure-jump greedy advance refilters the table through the applied
    // candidate's row expansion; with warm double buffers the rewrite must
    // not allocate (the engine refilters once per advance, deep in the hot
    // loop)
    ext_scratch.build(&pattern, &data, 2);
    ext_scratch.refilter(0, pattern.embeddings.len());
    ext_scratch.build(&pattern, &data, 2);
    let (refilter_allocs, ()) = counted(|| ext_scratch.refilter(0, pattern.embeddings.len()));
    assert_eq!(ext_scratch.table.candidate_count(), 1);
    assert!(
        refilter_allocs == 0,
        "warm table refilter allocated {refilter_allocs} times for {rows} remapped rows — \
         the entry rewrite must reuse its double buffers"
    );

    // ---- GroupSorter kernel: warm histogram+scatter is allocation-free --
    // the grouping kernel under the extension table: once its buffers have
    // seen the problem size, both the index-emitting and payload-scattering
    // forms must allocate nothing
    let mut sorter = GroupSorter::new();
    let kernel_items = 512u32;
    let kernel_groups = 7usize;
    let group_of_item: Vec<u32> = (0..kernel_items).map(|i| i % kernel_groups as u32).collect();
    let payload: Vec<u32> = (0..kernel_items).collect();
    let (mut offsets, mut order, mut scattered) = (Vec::new(), Vec::new(), Vec::new());
    sorter.group_into(&group_of_item, kernel_groups, &mut offsets, &mut order);
    sorter.scatter_by_group(&group_of_item, &payload, kernel_groups, &mut offsets, &mut scattered);
    let (sorter_allocs, ()) = counted(|| {
        sorter.group_into(&group_of_item, kernel_groups, &mut offsets, &mut order);
        sorter.scatter_by_group(&group_of_item, &payload, kernel_groups, &mut offsets, &mut scattered);
    });
    assert_eq!(order.len(), kernel_items as usize);
    assert_eq!(scattered.len(), kernel_items as usize);
    assert_eq!(
        sorter_allocs, 0,
        "warm GroupSorter kernel allocated {sorter_allocs} times for {kernel_items} items — \
         the histogram/scatter passes must reuse every buffer"
    );

    // ---- Stage II canonical dedup: fingerprint-reject path --------------
    // a child whose fingerprint collides with an interned pattern is the
    // dedup reject path; with the entry keys materialized (warm), each
    // further duplicate pays one fingerprint plus one scratch-computed key
    // and performs zero heap allocation
    let a = LabeledGraph::from_unlabeled_edges(
        &[l(0), l(1), l(2), l(3), l(4), l(9)],
        [(0, 1), (1, 2), (2, 3), (3, 4), (2, 5)],
    )
    .unwrap();
    // an isomorphic copy with permuted vertex ids
    let b = LabeledGraph::from_unlabeled_edges(
        &[l(9), l(4), l(3), l(2), l(1), l(0)],
        [(5, 4), (4, 3), (3, 2), (2, 1), (3, 0)],
    )
    .unwrap();
    let mut canon = CanonSet::new();
    assert!(canon.insert(&a).is_some());
    // warm-up: the first collision materializes the memoized entry key
    assert!(canon.insert(&b).is_none());
    assert!(canon.insert(&b).is_none());
    let rejects = 200u64;
    let (canon_allocs, ()) = counted(|| {
        for _ in 0..rejects {
            assert!(canon.insert(&b).is_none());
        }
    });
    assert!(
        canon_allocs == 0,
        "canonical-dedup fingerprint-reject path allocated {canon_allocs} times for {rejects} \
         duplicate rejections — the warm funnel must not allocate at all"
    );

    // ---- Stage II structural build: candidate-reject reuse --------------
    // rebuilding a candidate's structural extension into warm per-worker
    // scratch must stay allocation-free apart from the extended graph's
    // single new adjacency entry
    let g = labeled_paths_graph(1);
    let dm = DiamMine::new(MiningData::Single(&g), 1, SupportMeasure::DistinctVertexSets);
    let pattern = GrownPattern::from_path_pattern(&dm.frequent_edges()[0]);
    let ext = Extension::NewVertex { attach: 0, vertex_label: l(9), edge_label: Label::DEFAULT_EDGE };
    let chord = Extension::ClosingEdge { u: 0, v: 1, edge_label: Label::DEFAULT_EDGE };
    let _ = chord; // (a length-1 path has no non-adjacent pair to close)
    let mut struct_scratch = StructScratch::new();
    pattern.apply_structure_with(&ext, &mut struct_scratch);
    let builds = 200u64;
    let (struct_allocs, ()) = counted(|| {
        for _ in 0..builds {
            pattern.apply_structure_with(&ext, &mut struct_scratch);
        }
    });
    assert_eq!(struct_scratch.structure.new_vertex, Some(VertexId(2)));
    assert!(
        struct_allocs <= 2 * builds,
        "scratch structural build allocated {struct_allocs} times for {builds} rebuilds — \
         only the new vertex's adjacency entry may allocate"
    );

    // ---- ingest: warm arena re-freeze is allocation-free ----------------
    // the snapshot builder's steady state (repeated freezes of same-shaped
    // transactions, as in the sharded corpus build): once the arenas and
    // output columns have seen the transaction shape, rebuilding in place
    // must not touch the heap at all
    let g = labeled_paths_graph(50);
    let mut snapshot_builder = SnapshotBuilder::new();
    let mut frozen = snapshot_builder.build(&g);
    let (freeze_allocs, ()) = counted(|| snapshot_builder.build_into(&g, &mut frozen));
    assert_eq!(frozen.vertex_count(), g.vertex_count());
    assert_eq!(
        freeze_allocs, 0,
        "warm snapshot re-freeze allocated {freeze_allocs} times — \
         the counting-sort build must reuse its arenas and output columns"
    );

    // ---- incremental maintenance: a no-op refresh is allocation-free ----
    // with nothing dirty, `refresh` must hand back the maintained result
    // without touching the heap — the steady state of a serving deployment
    // polling an unchanged database
    let db = skinny_graph::GraphDatabase::from_graphs(vec![labeled_paths_graph(10)]);
    let config = SkinnyMineConfig::new(2, 2, 1).with_report(ReportMode::All);
    let mut incremental = IncrementalMiner::new(config, db).expect("a valid database mines");
    let polls = 200u64;
    let (noop_refresh_allocs, ()) = counted(|| {
        for _ in 0..polls {
            incremental.refresh().expect("a no-op refresh succeeds");
        }
    });
    assert!(!incremental.result().patterns.is_empty());
    assert_eq!(
        noop_refresh_allocs, 0,
        "no-op incremental refresh allocated {noop_refresh_allocs} times for {polls} polls — \
         an empty dirty set must short-circuit without touching the heap"
    );

    // ---- Stage I shard merge: warm merge is allocation-free -------------
    // the sharded seed enumeration's ordered merge: once the accumulator
    // holds a shard's keys, merging a same-keyed partial (whose rows were
    // built on a worker) moves each pattern into its empty slot without
    // allocating — the steady state of every chunk after the first
    let shard_partial = || {
        let mut partial = PatternTable::new();
        for t in 0..20usize {
            let p = partial.slot_for(&[l(0), l(1)], &[Label::DEFAULT_EDGE]);
            p.add_occurrence_slice(t, &[VertexId(0), VertexId(1)], false);
            let q = partial.slot_for(&[l(1), l(2)], &[Label::DEFAULT_EDGE]);
            q.add_occurrence_slice(t, &[VertexId(1), VertexId(2)], false);
        }
        partial
    };
    let mut accumulator = PatternTable::new();
    accumulator.merge(shard_partial()); // inserts the keys
    accumulator.reset_rows(); // back to the pre-merge steady state
    let next_chunk = shard_partial();
    let (shard_merge_allocs, ()) = counted(|| accumulator.merge(next_chunk));
    assert_eq!(accumulator.len(), 2);
    assert_eq!(
        shard_merge_allocs, 0,
        "warm shard merge allocated {shard_merge_allocs} times — \
         merging a partial into known keys must move rows, not copy them"
    );

    // ---- accept path: allocation tracks emitted patterns ----------------
    let g = labeled_paths_graph(200);
    let dm = DiamMine::new(MiningData::Single(&g), 1, SupportMeasure::DistinctVertexSets);
    let len1 = dm.frequent_edges();
    assert_eq!(len1.len(), 2);
    let scanned_rows = 2 * rows_of(&len1);
    let _warmup = dm.concat_double(&len1);
    let (accept_allocs, len2) = counted(|| dm.concat_double(&len1));
    assert_eq!(len2.len(), 1, "one length-2 pattern emitted");
    assert_eq!(len2[0].embeddings.len(), 200);
    assert!(
        accept_allocs < scanned_rows / 4,
        "concat accept path allocated {accept_allocs} times for {scanned_rows} scanned rows and \
         1 emitted pattern — occurrence rows must amortize into the arena"
    );

    // ---- Serving cache hit: zero allocations, zero deep clones ----------
    // the index's hit path is a canonical-key copy (all-Copy fields), a
    // sharded-map probe, an atomic recency bump and an Arc pointer-copy;
    // none of it may touch the heap — this is the pin on the old
    // `MiningResult::clone(cached)` deep-clone-per-hit bug
    let g = labeled_paths_graph(50);
    let index = MinimalPatternIndex::build(&g, 1, SupportMeasure::DistinctVertexSets, None);
    let config = SkinnyMineConfig::new(2, 2, 1).with_report(ReportMode::All);
    let first = index.request(&config).expect("request succeeds");
    assert!(!first.patterns.is_empty());
    let hits = 200u64;
    let (hit_allocs, last) = counted(|| {
        let mut last = index.request(&config).expect("request succeeds");
        for _ in 1..hits {
            last = index.request(&config).expect("request succeeds");
        }
        last
    });
    assert!(Arc::ptr_eq(&first, &last), "every hit must return the one cached allocation");
    assert_eq!(index.serving_stats().hits, hits, "every counted request must be a cache hit");
    assert_eq!(
        hit_allocs, 0,
        "serving cache hits allocated {hit_allocs} times for {hits} hits — \
         a hit must be a pointer-copy, never a deep clone"
    );
}

fn rows_of(paths: &[skinnymine::PathPattern]) -> u64 {
    paths.iter().map(|p| p.embeddings.len() as u64).sum()
}
