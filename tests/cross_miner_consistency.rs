//! Cross-miner consistency: SkinnyMine's output checked against the
//! reconstructed complete miner (MoSS) and against brute-force enumeration
//! on small inputs, plus the qualitative relationships between the miners
//! that the paper's evaluation is built on.

use skinny_baselines::{GraphMiner, Moss, MossConfig, SpiderMine, SpiderMineConfig, Subdue, SubdueConfig};
use skinny_datagen::{erdos_renyi, inject_patterns, skinny_pattern, ErConfig, SkinnyPatternConfig};
use skinny_graph::{analyze, LabeledGraph, SupportMeasure};
use skinnymine::{GraphConstraint, ReportMode, SkinnyConstraint, SkinnyMine, SkinnyMineConfig};

/// On a small graph, SkinnyMine with ReportMode::All must report exactly the
/// l-long δ-skinny subset of the complete frequent pattern set (as produced
/// by the complete MoSS reconstruction).
#[test]
fn skinnymine_matches_filtered_complete_miner() {
    // two copies of a 5-long backbone with two twigs
    let mut labels = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for _ in 0..2 {
        let base = labels.len() as u32;
        labels.extend((0..6u32).map(skinny_graph::Label));
        for i in 0..5u32 {
            edges.push((base + i, base + i + 1));
        }
        labels.push(skinny_graph::Label(10));
        edges.push((base + 2, labels.len() as u32 - 1));
        labels.push(skinny_graph::Label(11));
        edges.push((base + 3, labels.len() as u32 - 1));
    }
    let graph = LabeledGraph::from_unlabeled_edges(&labels, edges).unwrap();

    let (l, delta, sigma) = (5usize, 2u32, 2usize);

    // complete miner + constraint filter
    let complete = Moss::new(MossConfig::new(sigma)).mine_single(&graph);
    assert!(complete.completed);
    let constraint = SkinnyConstraint::new(l, delta);
    let mut expected: Vec<(usize, usize)> = complete
        .patterns
        .iter()
        .filter(|p| constraint.satisfied(&p.graph))
        .map(|p| (p.vertex_count(), p.edge_count()))
        .collect();
    expected.sort();

    // direct miner, complete output (same support measure as the baseline)
    let config = SkinnyMineConfig::new(l, delta, sigma)
        .with_support_measure(SupportMeasure::MinimumImage)
        .with_report(ReportMode::All);
    let result = SkinnyMine::new(config).mine(&graph).unwrap();
    let mut got: Vec<(usize, usize)> =
        result.patterns.iter().map(|p| (p.vertex_count(), p.edge_count())).collect();
    got.sort();

    assert_eq!(got, expected, "direct mining must equal enumerate-and-check + filter");
}

/// The headline qualitative claim: on data containing a long skinny pattern,
/// SkinnyMine recovers it while SpiderMine (diameter-bounded) and SUBDUE
/// (small-pattern bias) do not.
#[test]
fn skinnymine_finds_what_baselines_miss() {
    let background = erdos_renyi(&ErConfig::new(500, 2.5, 60, 3));
    let skinny = skinny_pattern(&SkinnyPatternConfig::new(22, 16, 1, 60, 8));
    assert_eq!(analyze(&skinny).unwrap().diameter_length(), 16);
    let data = inject_patterns(&background, &[(skinny.clone(), 2)], 6).graph;

    // SkinnyMine asks for long diameters and recovers a large skinny pattern
    let config = skinnymine::SkinnyMineConfig::new(16, 2, 2)
        .with_length(skinnymine::LengthConstraint::AtLeast(14))
        .with_support_measure(SupportMeasure::MinimumImage)
        .with_report(ReportMode::Closed)
        .with_exploration(skinnymine::Exploration::ClosureJump);
    let skinny_result = SkinnyMine::new(config).mine(&data).unwrap();
    let best_skinny = skinny_result.patterns.iter().map(|p| p.vertex_count()).max().unwrap_or(0);
    assert!(best_skinny >= 17, "SkinnyMine only recovered {best_skinny} vertices of the injected pattern");

    // SpiderMine with its diameter bound cannot output the full skinny pattern
    let spider = SpiderMine::new(SpiderMineConfig::paper_defaults().with_seeds(60)).mine_single(&data);
    let best_spider = spider.patterns.iter().map(|p| p.vertex_count()).max().unwrap_or(0);
    assert!(
        best_spider < skinny.vertex_count(),
        "SpiderMine unexpectedly recovered the full skinny pattern ({best_spider} vertices)"
    );
    for p in &spider.patterns {
        assert!(skinny_graph::diameter(&p.graph).unwrap_or(0) <= 4);
    }

    // SUBDUE reports small substructures
    let subdue = Subdue::new(SubdueConfig { budget: skinny_baselines::Budget::tiny(), ..Default::default() })
        .mine_single(&data);
    let best_subdue = subdue.patterns.iter().map(|p| p.vertex_count()).max().unwrap_or(0);
    assert!(best_subdue < skinny.vertex_count());
}

/// All reported SkinnyMine supports agree with independent subgraph-
/// isomorphism counting (the ground truth from the graph substrate).
#[test]
fn reported_supports_match_subiso_ground_truth() {
    let mut labels = Vec::new();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for _ in 0..3 {
        let base = labels.len() as u32;
        labels.extend([0u32, 1, 2, 3, 4].map(skinny_graph::Label));
        for i in 0..4u32 {
            edges.push((base + i, base + i + 1));
        }
        labels.push(skinny_graph::Label(9));
        edges.push((base + 2, labels.len() as u32 - 1));
    }
    let graph = LabeledGraph::from_unlabeled_edges(&labels, edges).unwrap();
    let config = SkinnyMineConfig::new(4, 2, 2).with_report(ReportMode::All);
    let result = SkinnyMine::new(config).mine(&graph).unwrap();
    assert!(!result.is_empty());
    for p in &result.patterns {
        let found = skinny_graph::find_embeddings(&p.graph, &graph, Default::default());
        assert_eq!(
            p.support,
            found.support(SupportMeasure::DistinctVertexSets),
            "support mismatch for pattern with {} vertices",
            p.vertex_count()
        );
    }
}
