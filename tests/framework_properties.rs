//! Property-based integration tests of the core invariants, spanning the
//! graph substrate, the miner and the direct-mining framework:
//!
//! * the canonical diameter is unique and invariant under vertex relabeling;
//! * the fast Constraint I–III checks agree with full canonical-diameter
//!   recomputation (Lemma 1 / Theorems 1–3);
//! * mined patterns always satisfy the l-long δ-skinny specification;
//! * the skinny constraint is reducible and continuous on random patterns
//!   (Properties 1 and 2 of §5).

use proptest::prelude::*;
use skinny_graph::{analyze, are_isomorphic, canonical_key, Label, LabeledGraph, VertexId};
use skinnymine::{
    ConstraintCheckMode, Continuous, Exploration, GraphConstraint, ReportMode, SkinnyConstraint, SkinnyMine,
    SkinnyMineConfig,
};

/// Strategy: a small random connected labeled graph built from a random
/// spanning tree plus random extra edges.
fn connected_graph(max_vertices: usize, max_labels: u32) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_vertices).prop_flat_map(move |n| {
        let labels = proptest::collection::vec(0..max_labels, n);
        let parents: Vec<_> = (1..n).map(|i| 0..i).collect();
        let extra = proptest::collection::vec((0..n, 0..n), 0..=n);
        (labels, parents, extra).prop_map(move |(labels, parents, extra)| {
            let labels: Vec<Label> = labels.into_iter().map(Label).collect();
            let mut g = LabeledGraph::new();
            for &l in &labels {
                g.add_vertex(l);
            }
            for (child, parent) in parents.into_iter().enumerate() {
                let _ = g.add_unlabeled_edge(VertexId((child + 1) as u32), VertexId(parent as u32));
            }
            for (a, b) in extra {
                if a != b {
                    let _ = g.add_unlabeled_edge(VertexId(a as u32), VertexId(b as u32));
                }
            }
            g
        })
    })
}

/// Relabels the vertex ids of a graph with a permutation, preserving labels
/// and adjacency.
fn permuted(g: &LabeledGraph, perm: &[usize]) -> LabeledGraph {
    let mut out = LabeledGraph::new();
    // perm[i] = new position of old vertex i
    let mut order: Vec<usize> = (0..g.vertex_count()).collect();
    order.sort_by_key(|&i| perm[i]);
    let mut new_of_old = vec![0u32; g.vertex_count()];
    for (new_id, &old) in order.iter().enumerate() {
        new_of_old[old] = new_id as u32;
    }
    for &old in &order {
        out.add_vertex(g.label(VertexId(old as u32)));
    }
    for e in g.edges() {
        let u = VertexId(new_of_old[e.u.index()]);
        let v = VertexId(new_of_old[e.v.index()]);
        let _ = out.add_edge(u, v, e.label);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The canonical diameter's label sequence is invariant under relabeling
    /// of physical vertex ids (the pattern-level property unique generation
    /// rests on), and the canonical key is a complete isomorphism invariant.
    #[test]
    fn canonical_diameter_invariant_under_permutation(
        g in connected_graph(9, 4),
        seed in 0u64..1000,
    ) {
        let a = analyze(&g).expect("generated graphs are connected");
        // build a deterministic permutation from the seed
        let n = g.vertex_count();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let h = permuted(&g, &perm);
        prop_assert!(are_isomorphic(&g, &h));
        prop_assert_eq!(canonical_key(&g), canonical_key(&h));
        let b = analyze(&h).expect("permuted graph stays connected");
        prop_assert_eq!(a.diameter_length(), b.diameter_length());
        // label sequences agree up to orientation
        let la: Vec<Label> = a.canonical_diameter.vertices().iter().map(|&v| g.label(v)).collect();
        let lb: Vec<Label> = b.canonical_diameter.vertices().iter().map(|&v| h.label(v)).collect();
        let la_rev: Vec<Label> = la.iter().rev().copied().collect();
        prop_assert!(la == lb || la_rev == lb,
            "canonical diameter labels changed under permutation: {:?} vs {:?}", la, lb);
    }

    /// Mining with the fast local constraint checks and with exact
    /// recomputation produces identical pattern sets (Lemma 1), and every
    /// reported pattern satisfies the specification.
    #[test]
    fn fast_and_exact_constraint_checks_agree(g in connected_graph(10, 3)) {
        let a = analyze(&g).expect("connected");
        let l = a.diameter_length();
        prop_assume!(l >= 2);
        let base = SkinnyMineConfig::new(l, 2, 1)
            .with_report(ReportMode::All)
            .with_exploration(Exploration::Exhaustive);
        let fast = SkinnyMine::new(base.clone().with_constraint_check(ConstraintCheckMode::Fast))
            .mine(&g)
            .expect("mining succeeds");
        let exact = SkinnyMine::new(base.with_constraint_check(ConstraintCheckMode::Exact))
            .mine(&g)
            .expect("mining succeeds");
        let keys = |r: &skinnymine::MiningResult| {
            let mut v: Vec<_> = r.patterns.iter().map(|p| canonical_key(&p.graph)).collect();
            v.sort_by(|x, y| x.cmp_code(y));
            v
        };
        prop_assert_eq!(keys(&fast), keys(&exact));
        for p in &fast.patterns {
            prop_assert!(skinnymine::satisfies_skinny_spec(&p.graph, p.diameter_len, 2, &p.diameter_labels));
        }
    }

    /// No pattern is reported twice (unique generation) and all reported
    /// supports are at least the threshold.
    #[test]
    fn unique_generation_and_support_threshold(g in connected_graph(10, 3)) {
        let a = analyze(&g).expect("connected");
        let l = a.diameter_length().max(1);
        let config = SkinnyMineConfig::new(l, 3, 1).with_report(ReportMode::All);
        let result = SkinnyMine::new(config).mine(&g).expect("mining succeeds");
        let mut keys: Vec<_> = result.patterns.iter().map(|p| canonical_key(&p.graph)).collect();
        let before = keys.len();
        keys.sort_by(|x, y| x.cmp_code(y));
        keys.dedup();
        prop_assert_eq!(before, keys.len(), "duplicate patterns reported");
        prop_assert!(result.patterns.iter().all(|p| p.support >= 1));
    }

    /// Properties 1 and 2 of the framework hold for the skinny constraint on
    /// arbitrary connected graphs: every length-l path is a minimal
    /// satisfying pattern, every satisfying pattern reduces by one growth
    /// step (an edge, or a vertex with its edges) unless it is minimal, and
    /// the only minimal patterns beyond the paths of Observation 1 are
    /// cyclic (e.g. C₅ for l = 2, where removing any edge or vertex breaks
    /// the diameter).
    #[test]
    fn skinny_constraint_reducible_and_continuous(g in connected_graph(9, 4)) {
        let a = analyze(&g).expect("connected");
        let l = a.diameter_length();
        prop_assume!(l >= 1);
        let c = SkinnyConstraint::new(l, u32::MAX);
        // the graph itself satisfies the constraint with delta = infinity
        prop_assert!(c.satisfied(&g));
        // continuity: either it is minimal or some one-growth-step-smaller
        // connected sub-pattern still satisfies the constraint
        prop_assert!(c.continuity_holds_for(&g), "continuity violated for a {}-vertex graph", g.vertex_count());
        // reducibility: bare paths of length l are always minimal, and any
        // other minimal pattern must contain a cycle (non-path trees always
        // reduce by dropping a leaf off a shortest arm)
        let is_path = g.vertex_count() == l + 1 && g.edge_count() == l;
        if is_path {
            prop_assert!(c.is_minimal(&g), "a bare length-l path must be minimal");
        } else if c.is_minimal(&g) {
            prop_assert!(
                g.edge_count() >= g.vertex_count(),
                "a minimal non-path must be cyclic, got a tree with {} vertices",
                g.vertex_count()
            );
        }
    }
}
