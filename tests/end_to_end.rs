//! Cross-crate end-to-end tests: synthetic data generation (skinny-datagen)
//! -> mining (skinnymine) -> verification against the specification
//! (skinny-graph), in both problem settings.

use skinny_datagen::{
    erdos_renyi, generate_dblp, generate_transaction_database, generate_weibo, inject_patterns,
    skinny_pattern, DblpConfig, ErConfig, SkinnyPatternConfig, TransactionSetting, WeiboConfig,
};
use skinny_graph::{analyze, SupportMeasure};
use skinnymine::{Exploration, LengthConstraint, ReportMode, SkinnyMine, SkinnyMineConfig};

/// Injecting a known skinny pattern into a random background and mining with
/// the matching (l, delta) request must recover it.
#[test]
fn recovers_injected_pattern_from_background() {
    let background = erdos_renyi(&ErConfig::new(600, 2.5, 60, 11));
    let pattern = skinny_pattern(&SkinnyPatternConfig::new(24, 14, 2, 60, 21));
    let expected = analyze(&pattern).expect("pattern is connected");
    assert_eq!(expected.diameter_length(), 14);

    let data = inject_patterns(&background, &[(pattern.clone(), 3)], 5).graph;
    let config = SkinnyMineConfig::new(14, 2, 2)
        .with_length(LengthConstraint::AtLeast(12))
        .with_report(ReportMode::Closed)
        .with_exploration(Exploration::ClosureJump);
    let result = SkinnyMine::new(config).mine(&data).expect("mining succeeds");

    assert!(!result.is_empty(), "no pattern mined at all");
    // some reported pattern must cover (most of) the injected one
    let recovered = result.patterns.iter().any(|p| {
        p.diameter_len == 14 && p.vertex_count() * 10 >= pattern.vertex_count() * 8 && p.support >= 3
    });
    assert!(recovered, "the injected 14-long pattern was not recovered");

    // every reported pattern must satisfy the specification and carry valid
    // embeddings
    for p in &result.patterns {
        assert!(
            skinnymine::satisfies_skinny_spec(&p.graph, p.diameter_len, 2, &p.diameter_labels),
            "reported pattern violates the l-long delta-skinny specification"
        );
        for e in p.embeddings.iter() {
            assert!(e.is_valid(&p.graph, &data), "stored embedding is not a real occurrence");
        }
    }
}

/// The transaction setting end to end: patterns planted in a subset of
/// transactions are found with transaction support equal to that subset size.
#[test]
fn transaction_setting_end_to_end() {
    let setting = TransactionSetting {
        transactions: 6,
        vertices: 150,
        degree: 3.0,
        labels: 40,
        skinny_patterns: 2,
        skinny_vertices: 16,
        skinny_diameter: 10,
        skinny_support: 4,
        small_patterns: 5,
        small_vertices: 4,
        small_support: 3,
    };
    let db = generate_transaction_database(&setting, 3);
    assert_eq!(db.len(), 6);

    let config = SkinnyMineConfig::new(10, 2, 3)
        .with_length(LengthConstraint::AtLeast(8))
        .with_support_measure(SupportMeasure::Transactions)
        .with_report(ReportMode::Closed)
        .with_exploration(Exploration::ClosureJump);
    let result = SkinnyMine::new(config).mine_database(&db).expect("mining succeeds");
    assert!(!result.is_empty(), "expected at least one frequent skinny pattern across transactions");
    for p in &result.patterns {
        assert!(p.support >= 3);
        assert!(p.diameter_len >= 8);
        // embeddings must reference the transaction they belong to
        for e in p.embeddings.iter() {
            assert!(e.transaction < db.len());
            assert!(e.is_valid(&p.graph, &db[e.transaction]));
        }
    }
}

/// The simulated DBLP corpus yields long temporal collaboration patterns.
#[test]
fn dblp_case_study_produces_long_patterns() {
    let db = generate_dblp(&DblpConfig { authors: 60, ..Default::default() });
    let config = SkinnyMineConfig::new(20, 2, 5)
        .with_length(LengthConstraint::AtLeast(20))
        .with_support_measure(SupportMeasure::Transactions)
        .with_report(ReportMode::Closed)
        .with_exploration(Exploration::ClosureJump);
    let result = SkinnyMine::new(config).mine_database(&db).expect("mining succeeds");
    assert!(!result.is_empty());
    assert!(result.patterns.iter().all(|p| p.diameter_len >= 20));
    assert!(result.patterns.iter().all(|p| p.support >= 5));
}

/// The simulated Weibo corpus yields long skinny diffusion chains, including
/// chains with follower-interaction twigs (the paper's Figure 24 pattern).
#[test]
fn weibo_case_study_produces_diffusion_chains() {
    let db = generate_weibo(&WeiboConfig { conversations: 60, ..Default::default() });
    let config = SkinnyMineConfig::new(10, 3, 5)
        .with_length(LengthConstraint::AtLeast(10))
        .with_support_measure(SupportMeasure::Transactions)
        .with_report(ReportMode::Closed)
        .with_exploration(Exploration::ClosureJump);
    let result = SkinnyMine::new(config).mine_database(&db).expect("mining succeeds");
    assert!(!result.is_empty());
    // at least one mined pattern has interaction twigs (more vertices than
    // its diameter path alone)
    assert!(
        result.patterns.iter().any(|p| p.vertex_count() > p.diameter_len + 1),
        "expected at least one diffusion chain with interaction twigs"
    );
}

/// The minimal-pattern index serves repeated requests identically to direct
/// mining runs (the Figure-2 deployment).
#[test]
fn index_requests_match_direct_runs() {
    let background = erdos_renyi(&ErConfig::new(400, 2.5, 50, 17));
    let pattern = skinny_pattern(&SkinnyPatternConfig::new(14, 8, 2, 50, 23));
    let data = inject_patterns(&background, &[(pattern, 3)], 9).graph;

    let index =
        skinnymine::MinimalPatternIndex::build(&data, 2, SupportMeasure::DistinctVertexSets, Some(10));
    for l in [6usize, 8] {
        let config = SkinnyMineConfig::new(l, 2, 2)
            .with_report(ReportMode::Closed)
            .with_exploration(Exploration::ClosureJump);
        let via_index = index.request(&config).expect("request matches index");
        let direct = SkinnyMine::new(config).mine(&data).expect("mining succeeds");
        let mut a: Vec<(usize, usize, usize)> =
            via_index.patterns.iter().map(|p| (p.vertex_count(), p.edge_count(), p.support)).collect();
        let mut b: Vec<(usize, usize, usize)> =
            direct.patterns.iter().map(|p| (p.vertex_count(), p.edge_count(), p.support)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "index-served result differs from direct mining at l = {l}");
    }
}
