//! Quickstart: build a small labeled graph, mine its l-long δ-skinny
//! patterns with SkinnyMine, and inspect the result.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use skinny_graph::{Label, LabeledGraph};
use skinnymine::{ReportMode, SkinnyMine, SkinnyMineConfig};

fn main() {
    // A toy "trajectory" graph: two users repeat the same 6-stop route
    // (the backbone) and each stop has a point-of-interest attached (a twig).
    // Labels 0..6 are stops, labels 10.. are points of interest.
    let mut graph = LabeledGraph::new();
    for copy in 0..2 {
        // backbone: stops 0-1-2-3-4-5-6
        let stops: Vec<_> = (0..7).map(|s| graph.add_vertex(Label(s))).collect();
        for w in stops.windows(2) {
            graph.add_unlabeled_edge(w[0], w[1]).expect("fresh backbone edge");
        }
        // twigs: a cafe at stop 2 and a museum at stop 4
        let cafe = graph.add_vertex(Label(10));
        let museum = graph.add_vertex(Label(11));
        graph.add_unlabeled_edge(stops[2], cafe).expect("fresh twig edge");
        graph.add_unlabeled_edge(stops[4], museum).expect("fresh twig edge");
        let _ = copy;
    }
    println!("data graph: {} vertices, {} edges", graph.vertex_count(), graph.edge_count());

    // Mine all 6-long 2-skinny patterns that occur at least twice.
    let config = SkinnyMineConfig::new(6, 2, 2).with_report(ReportMode::Closed);
    let result = SkinnyMine::new(config).mine(&graph).expect("mining succeeds on this graph");

    println!("\nStage I found {} canonical diameter(s)", result.stats.diam_mine.patterns_out);
    println!("reported {} closed skinny pattern(s):\n", result.patterns.len());
    for pattern in &result.patterns {
        println!("  {}", pattern.describe());
        println!(
            "    diameter labels: {:?}",
            pattern.diameter_labels.iter().map(|l| l.id()).collect::<Vec<_>>()
        );
        println!("    embeddings: {}", pattern.embeddings.len());
    }
    println!("\nstats: {}", result.stats.summary());

    // The largest pattern recovers the full route with both points of interest.
    let largest = result.patterns.first().expect("at least one pattern");
    assert_eq!(largest.diameter_len, 6);
    assert!(largest.vertex_count() >= 9);
    println!("\nquickstart OK: recovered the {}-vertex trajectory pattern", largest.vertex_count());
}
