//! DBLP temporal collaboration scenario (§6.3): mine 20-year collaboration
//! trajectories from a (simulated) corpus of per-author time-line graphs and
//! read off the career patterns the paper showcases (Figures 21–22).
//!
//! Run with:
//! ```text
//! cargo run --release --example dblp_collaboration
//! ```

use skinny_datagen::{dblp, generate_dblp, DblpConfig};
use skinny_graph::SupportMeasure;
use skinnymine::{Exploration, LengthConstraint, ReportMode, SkinnyMine, SkinnyMineConfig};

fn main() {
    // Simulated DBLP corpus: 400 authors with 20+ year careers; 20% follow
    // the "collaborate with increasingly senior co-authors" trajectory.
    let corpus = generate_dblp(&DblpConfig { authors: 400, ..Default::default() });
    println!(
        "author corpus: {} time-line graphs, {} vertices in total",
        corpus.len(),
        corpus.total_vertices()
    );

    // Patterns across 20 years and above, interaction twigs of depth <= 2,
    // appearing in at least 5 author careers.
    let config = SkinnyMineConfig::new(20, 2, 5)
        .with_length(LengthConstraint::AtLeast(20))
        .with_support_measure(SupportMeasure::Transactions)
        .with_report(ReportMode::Closed)
        .with_exploration(Exploration::ClosureJump);
    let started = std::time::Instant::now();
    let result = SkinnyMine::new(config).mine_database(&corpus).expect("corpus is non-empty");
    println!(
        "\nfound {} frequent temporal collaboration patterns (diameter >= 20) in {:.2?}",
        result.patterns.len(),
        started.elapsed()
    );

    let labels = dblp::dblp_label_table();
    for pattern in result.patterns.iter().take(3) {
        println!("\n  {}", pattern.describe());
        // summarize the collaboration twigs along the time-line
        let mut twigs: Vec<String> = pattern
            .graph
            .labels()
            .iter()
            .filter(|&&l| l != dblp::YEAR_LABEL)
            .map(|&l| labels.name_or_placeholder(l))
            .collect();
        twigs.sort();
        println!("  collaboration milestones on the time-line: {}", twigs.join(", "));
    }

    println!("\ndblp example OK");
}
