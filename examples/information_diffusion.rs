//! Information-diffusion analysis scenario (§6.3, Sina Weibo): mine long
//! skinny retweet/comment chains from a (simulated) corpus of conversation
//! graphs and interpret the recurring interaction pattern.
//!
//! Run with:
//! ```text
//! cargo run --release --example information_diffusion
//! ```

use skinny_datagen::{generate_weibo, weibo, WeiboConfig};
use skinny_graph::SupportMeasure;
use skinnymine::{Exploration, LengthConstraint, ReportMode, SkinnyMine, SkinnyMineConfig};

fn main() {
    // Simulated conversation corpus: 300 popular tweets, diffusion chains of
    // 10-16 hops, 30% of them showing the "root keeps engaging" behaviour.
    let corpus = generate_weibo(&WeiboConfig { conversations: 300, ..Default::default() });
    println!(
        "conversation corpus: {} graphs, {} vertices, {} edges",
        corpus.len(),
        corpus.total_vertices(),
        corpus.total_edges()
    );

    // Find diffusion chains at least 10 hops long with interaction twigs of
    // depth at most 3, occurring in at least 5 conversations.
    let config = SkinnyMineConfig::new(10, 3, 5)
        .with_length(LengthConstraint::AtLeast(10))
        .with_support_measure(SupportMeasure::Transactions)
        .with_report(ReportMode::Closed)
        .with_exploration(Exploration::ClosureJump);
    let started = std::time::Instant::now();
    let result = SkinnyMine::new(config).mine_database(&corpus).expect("corpus is non-empty");
    println!(
        "\nmined {} frequent skinny diffusion patterns in {:.2?} ({} diffusion-chain clusters)",
        result.patterns.len(),
        started.elapsed(),
        result.stats.clusters
    );

    // Interpret the most prominent pattern with the role labels.
    let labels = weibo::weibo_label_table();
    if let Some(best) = result.largest_pattern() {
        println!("\nmost prominent pattern: {}", best.describe());
        let roles: Vec<String> =
            best.diameter_labels.iter().map(|&l| labels.name_or_placeholder(l)).collect();
        println!("  diffusion chain roles: {}", roles.join(" -> "));
        let followers = best.graph.labels().iter().filter(|&&l| l == weibo::FOLLOWER).count();
        println!("  follower interactions along the chain: {followers}");
    }

    println!("\ninformation-diffusion example OK");
}
