//! Mobility / trajectory mining scenario from the paper's introduction:
//! popular travelling routes (the long backbone) together with associated
//! points of interest (the short twigs), mined from a synthetic city graph.
//!
//! The example demonstrates the *direct mining* deployment of Figure 2:
//! the minimal-pattern index is pre-computed once and then serves several
//! mining requests with different diameter constraints without re-running
//! Stage I.
//!
//! Run with:
//! ```text
//! cargo run --release --example mobility_trajectories
//! ```

use skinny_datagen::{erdos_renyi, inject_patterns, skinny_pattern, ErConfig, SkinnyPatternConfig};
use skinny_graph::SupportMeasure;
use skinnymine::{MinimalPatternIndex, ReportMode};

fn main() {
    // A synthetic "city": 3 000 locations with 60 venue categories, sparse
    // connectivity, plus three popular routes of different lengths planted
    // with 3 occurrences each (different users taking the same route).
    let background = erdos_renyi(&ErConfig::new(3_000, 2.5, 60, 7));
    let routes = vec![
        (skinny_pattern(&SkinnyPatternConfig::new(18, 12, 2, 60, 100)), 3),
        (skinny_pattern(&SkinnyPatternConfig::new(14, 10, 2, 60, 200)), 3),
        (skinny_pattern(&SkinnyPatternConfig::new(10, 8, 1, 60, 300)), 3),
    ];
    let city = inject_patterns(&background, &routes, 42).graph;
    println!(
        "city graph: {} locations, {} links, {} planted routes",
        city.vertex_count(),
        city.edge_count(),
        routes.len()
    );

    // Pre-compute the minimal-pattern index (Stage I) once.
    let start = std::time::Instant::now();
    let index = MinimalPatternIndex::build(&city, 2, SupportMeasure::DistinctVertexSets, Some(14));
    println!(
        "minimal-pattern index: {} frequent paths across lengths {:?} (built in {:.2?})",
        index.len(),
        index.available_lengths(),
        index.build_time()
    );
    let _ = start;

    // Serve three different mining requests from the same index.
    for (l, delta) in [(8usize, 1u32), (10, 2), (12, 2)] {
        let result = index.request_exact(l, delta, ReportMode::Closed).expect("request uses the index sigma");
        println!("\nrequest: routes of length {l} with POI depth <= {delta}");
        println!(
            "  -> {} closed pattern(s), LevelGrow {:.2?}",
            result.patterns.len(),
            result.stats.level_grow.duration
        );
        if let Some(best) = result.largest_pattern() {
            println!("  largest: {}", best.describe());
        }
    }

    println!("\nmobility example OK");
}
